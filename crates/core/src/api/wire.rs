//! The pinned JSON wire format for [`JobSpec`] and [`JobResult`].
//!
//! Hand-written against the canonical document model in
//! [`serde::json`] (the in-tree shim): objects keep field order, the
//! writer emits no whitespace, and numbers use shortest round-trip form,
//! so `to_json(from_json(s)) == s` byte for byte. Golden tests in
//! `tests/api_serde.rs` pin the format; change it only with a version
//! bump of the `"v"` field.

use serde::json::Value;

use fq_ising::{IsingModel, OutputDistribution, SpinVec};
use fq_transpile::{CompileOptions, LayoutStrategy};

use crate::api::{
    BackendSpec, DeviceSpec, ErrorModel, GraphWeighting, JobKind, JobResult, JobSpec, ProblemSpec,
};
use crate::pipeline::CircuitMetrics;
use crate::solve::SolveOutcome;
use crate::{
    ExecutorKind, FqError, FrozenQubitsConfig, HotspotStrategy, QosTier, Report, RunSummary,
};

/// Wire-format version tag of the original (exact-tier) documents.
pub const WIRE_VERSION: u64 = 1;

/// Wire-format version tag of documents carrying QoS-tier fields: a
/// spec with a top-level `"tier"` or a result with an `"error_model"`.
///
/// The versioning is canonical in both directions: an exact job always
/// serializes as v1 (so every pre-tier golden byte is unchanged), a
/// non-exact job always serializes as v2 with its tier field present,
/// and the parser rejects the mixed forms (v1 + tier, v2 − tier,
/// v2 + `"exact"`), so each document has exactly one wire form.
pub const WIRE_VERSION_TIERED: u64 = 2;

fn num(x: f64) -> Value {
    Value::Number(x)
}

fn unum(x: u64) -> Value {
    // Exact across the full u64 range (seeds!), unlike going through f64.
    Value::UInt(x)
}

fn idx(x: usize) -> Value {
    Value::UInt(x as u64)
}

fn bad(msg: impl Into<String>) -> FqError {
    FqError::Serde(msg.into())
}

impl JobSpec {
    /// Serializes to the canonical JSON wire form — v1 for exact jobs
    /// (byte-identical to the pre-tier format), v2 with a top-level
    /// `"tier"` field for approximate jobs.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut pairs = vec![
            (
                "v",
                unum(if self.config.tier.is_exact() {
                    WIRE_VERSION
                } else {
                    WIRE_VERSION_TIERED
                }),
            ),
            ("problem", problem_to_value(&self.problem)),
            ("device", Value::string(self.device.name())),
            ("config", config_to_value(&self.config)),
            ("backend", Value::string(self.backend.name())),
            ("kind", kind_to_value(self.kind)),
        ];
        if !self.config.tier.is_exact() {
            pairs.push(("tier", Value::string(self.config.tier.name())));
        }
        Value::object(pairs).to_json()
    }

    /// Parses the canonical JSON wire form.
    ///
    /// # Errors
    ///
    /// Returns [`FqError::Serde`] for malformed documents or unknown
    /// names/versions, and [`FqError::UnknownTier`] for an unrecognized
    /// tier name (so the service edge can answer with a structured 422
    /// instead of a generic parse failure).
    pub fn from_json(text: &str) -> Result<JobSpec, FqError> {
        let v = Value::parse(text)?;
        let tier = spec_tier_from_value(&v)?;
        let device_name = v.field("device")?.as_str()?;
        Ok(JobSpec {
            problem: problem_from_value(v.field("problem")?)?,
            device: DeviceSpec::from_name(device_name)
                .ok_or_else(|| bad(format!("unknown device `{device_name}`")))?,
            config: FrozenQubitsConfig {
                tier,
                ..config_from_value(v.field("config")?)?
            },
            backend: {
                let name = v.field("backend")?.as_str()?;
                BackendSpec::from_name(name)
                    .ok_or_else(|| bad(format!("unknown backend `{name}`")))?
            },
            kind: kind_from_value(v.field("kind")?)?,
        })
    }
}

/// Resolves the version/tier pair of a spec document, rejecting every
/// non-canonical combination.
fn spec_tier_from_value(v: &Value) -> Result<QosTier, FqError> {
    let version = v.field("v")?.as_u64()?;
    match version {
        WIRE_VERSION => {
            if v.get("tier").is_some() {
                return Err(bad(
                    "wire v1 carries no tier field; non-exact tiers use wire v2",
                ));
            }
            Ok(QosTier::Exact)
        }
        WIRE_VERSION_TIERED => {
            let Some(tier_value) = v.get("tier") else {
                return Err(bad(format!(
                    "unsupported wire version {version} without a tier field"
                )));
            };
            let name = tier_value.as_str()?;
            let tier =
                QosTier::from_name(name).ok_or_else(|| FqError::UnknownTier(name.to_string()))?;
            if tier.is_exact() {
                return Err(bad("tier `exact` is canonically wire v1, not v2"));
            }
            Ok(tier)
        }
        other => Err(bad(format!("unsupported wire version {other}"))),
    }
}

impl JobResult {
    /// Serializes to the canonical JSON wire form — v1 for plain
    /// results (byte-identical to the pre-tier format), v2 with an
    /// `"error_model"` field, same payload schema, for `Approx`
    /// wrappers.
    #[must_use]
    pub fn to_json(&self) -> String {
        let (mut plain, mut error_model) = (self, None);
        while let JobResult::Approx {
            error_model: em,
            inner,
        } = plain
        {
            error_model = Some(em);
            plain = inner;
        }
        let mut pairs = vec![
            (
                "v",
                unum(if error_model.is_some() {
                    WIRE_VERSION_TIERED
                } else {
                    WIRE_VERSION
                }),
            ),
            ("kind", Value::string(plain.kind_name())),
        ];
        if let Some(em) = error_model {
            pairs.push(("error_model", error_model_to_value(em)));
        }
        match plain {
            JobResult::Baseline(summary) => pairs.push(("summary", summary_to_value(summary))),
            JobResult::Frozen {
                summary,
                frozen_qubits,
            } => {
                pairs.push(("summary", summary_to_value(summary)));
                pairs.push((
                    "frozen_qubits",
                    Value::Array(frozen_qubits.iter().map(|&q| idx(q)).collect()),
                ));
            }
            JobResult::Compare(report) => pairs.push(("report", report_to_value(report))),
            JobResult::Sample(outcome) => pairs.push(("outcome", outcome_to_value(outcome))),
            JobResult::Approx { .. } => unreachable!("unwrapped above"),
        }
        Value::object(pairs).to_json()
    }

    /// Parses the canonical JSON wire form.
    ///
    /// # Errors
    ///
    /// Returns [`FqError::Serde`] for malformed documents or unknown
    /// kinds/versions.
    pub fn from_json(text: &str) -> Result<JobResult, FqError> {
        let v = Value::parse(text)?;
        let version = v.field("v")?.as_u64()?;
        let error_model = match version {
            WIRE_VERSION => {
                if v.get("error_model").is_some() {
                    return Err(bad(
                        "wire v1 carries no error_model; approximate results use wire v2",
                    ));
                }
                None
            }
            WIRE_VERSION_TIERED => match v.get("error_model") {
                Some(em) => Some(error_model_from_value(em)?),
                None => {
                    return Err(bad(format!(
                        "unsupported wire version {version} without an error_model field"
                    )))
                }
            },
            other => return Err(bad(format!("unsupported wire version {other}"))),
        };
        let plain = match v.field("kind")?.as_str()? {
            "baseline" => JobResult::Baseline(summary_from_value(v.field("summary")?)?),
            "frozen" => JobResult::Frozen {
                summary: summary_from_value(v.field("summary")?)?,
                frozen_qubits: v
                    .field("frozen_qubits")?
                    .as_array()?
                    .iter()
                    .map(Value::as_usize)
                    .collect::<Result<_, _>>()?,
            },
            "compare" => JobResult::Compare(report_from_value(v.field("report")?)?),
            "sample" => JobResult::Sample(outcome_from_value(v.field("outcome")?)?),
            other => return Err(bad(format!("unknown result kind `{other}`"))),
        };
        Ok(match error_model {
            Some(error_model) => JobResult::Approx {
                error_model,
                inner: Box::new(plain),
            },
            None => plain,
        })
    }
}

fn error_model_to_value(em: &ErrorModel) -> Value {
    Value::object(vec![
        ("tier", Value::string(em.tier.name())),
        ("scan_resolution", idx(em.scan_resolution)),
        ("refine_resolution", idx(em.refine_resolution)),
        ("optimizer_evals", idx(em.optimizer_evals)),
        ("lightcone_depth", idx(em.lightcone_depth)),
        ("term_sample_keep", num(em.term_sample_keep)),
        ("rel_bound", num(em.rel_bound)),
        ("abs_floor", num(em.abs_floor)),
    ])
}

fn error_model_from_value(v: &Value) -> Result<ErrorModel, FqError> {
    let name = v.field("tier")?.as_str()?;
    let tier = QosTier::from_name(name).ok_or_else(|| FqError::UnknownTier(name.to_string()))?;
    if tier.is_exact() {
        return Err(bad("an error_model cannot carry tier `exact`"));
    }
    Ok(ErrorModel {
        tier,
        scan_resolution: v.field("scan_resolution")?.as_usize()?,
        refine_resolution: v.field("refine_resolution")?.as_usize()?,
        optimizer_evals: v.field("optimizer_evals")?.as_usize()?,
        lightcone_depth: v.field("lightcone_depth")?.as_usize()?,
        term_sample_keep: v.field("term_sample_keep")?.as_f64()?,
        rel_bound: v.field("rel_bound")?.as_f64()?,
        abs_floor: v.field("abs_floor")?.as_f64()?,
    })
}

fn problem_to_value(problem: &ProblemSpec) -> Value {
    match problem {
        ProblemSpec::Ising(model) => {
            let mut pairs = vec![
                ("type", Value::string("ising")),
                ("num_vars", idx(model.num_vars())),
                ("offset", num(model.offset())),
            ];
            let linear: Vec<Value> = model
                .linears()
                .filter(|&(_, h)| h != 0.0)
                .map(|(i, h)| Value::Array(vec![idx(i), num(h)]))
                .collect();
            pairs.push(("linear", Value::Array(linear)));
            let couplings: Vec<Value> = model
                .couplings()
                .map(|((i, j), jij)| Value::Array(vec![idx(i), idx(j), num(jij)]))
                .collect();
            pairs.push(("couplings", Value::Array(couplings)));
            Value::object(pairs)
        }
        ProblemSpec::Graph {
            num_nodes,
            edges,
            weighting,
        } => {
            let mut pairs = vec![
                ("type", Value::string("graph")),
                ("num_nodes", idx(*num_nodes)),
                (
                    "edges",
                    Value::Array(
                        edges
                            .iter()
                            .map(|&(a, b)| Value::Array(vec![idx(a), idx(b)]))
                            .collect(),
                    ),
                ),
            ];
            match weighting {
                GraphWeighting::Unit => pairs.push(("weighting", Value::string("unit"))),
                GraphWeighting::Pm1 { seed } => {
                    pairs.push(("weighting", Value::string("pm1")));
                    pairs.push(("weighting_seed", unum(*seed)));
                }
            }
            Value::object(pairs)
        }
        ProblemSpec::BarabasiAlbert { n, d, seed } => Value::object(vec![
            ("type", Value::string("barabasi_albert")),
            ("n", idx(*n)),
            ("d", idx(*d)),
            ("seed", unum(*seed)),
        ]),
    }
}

fn problem_from_value(v: &Value) -> Result<ProblemSpec, FqError> {
    match v.field("type")?.as_str()? {
        "ising" => {
            let mut model = IsingModel::new(v.field("num_vars")?.as_usize()?);
            model.set_offset(v.field("offset")?.as_f64()?);
            for item in v.field("linear")?.as_array()? {
                let pair = item.as_array()?;
                if pair.len() != 2 {
                    return Err(bad("linear entries are [index, h] pairs"));
                }
                model.set_linear(pair[0].as_usize()?, pair[1].as_f64()?)?;
            }
            for item in v.field("couplings")?.as_array()? {
                let triple = item.as_array()?;
                if triple.len() != 3 {
                    return Err(bad("coupling entries are [i, j, J] triples"));
                }
                model.set_coupling(
                    triple[0].as_usize()?,
                    triple[1].as_usize()?,
                    triple[2].as_f64()?,
                )?;
            }
            Ok(ProblemSpec::Ising(model))
        }
        "graph" => {
            let edges = v
                .field("edges")?
                .as_array()?
                .iter()
                .map(|item| {
                    let pair = item.as_array()?;
                    if pair.len() != 2 {
                        return Err(serde::json::JsonError("edges are [a, b] pairs".into()));
                    }
                    Ok((pair[0].as_usize()?, pair[1].as_usize()?))
                })
                .collect::<Result<_, _>>()?;
            let weighting = match v.field("weighting")?.as_str()? {
                "unit" => GraphWeighting::Unit,
                "pm1" => GraphWeighting::Pm1 {
                    seed: v.field("weighting_seed")?.as_u64()?,
                },
                other => return Err(bad(format!("unknown weighting `{other}`"))),
            };
            Ok(ProblemSpec::Graph {
                num_nodes: v.field("num_nodes")?.as_usize()?,
                edges,
                weighting,
            })
        }
        "barabasi_albert" => Ok(ProblemSpec::BarabasiAlbert {
            n: v.field("n")?.as_usize()?,
            d: v.field("d")?.as_usize()?,
            seed: v.field("seed")?.as_u64()?,
        }),
        other => Err(bad(format!("unknown problem type `{other}`"))),
    }
}

fn config_to_value(config: &FrozenQubitsConfig) -> Value {
    Value::object(vec![
        ("num_frozen", idx(config.num_frozen)),
        ("layers", idx(config.layers)),
        ("hotspots", hotspots_to_value(&config.hotspots)),
        ("prune_symmetric", Value::Bool(config.prune_symmetric)),
        ("compile", compile_to_value(config.compile)),
        ("param_grid", idx(config.param_grid)),
        ("seed", unum(config.seed)),
        ("executor", executor_to_value(config.executor)),
    ])
}

fn config_from_value(v: &Value) -> Result<FrozenQubitsConfig, FqError> {
    Ok(FrozenQubitsConfig {
        num_frozen: v.field("num_frozen")?.as_usize()?,
        layers: v.field("layers")?.as_usize()?,
        hotspots: hotspots_from_value(v.field("hotspots")?)?,
        prune_symmetric: v.field("prune_symmetric")?.as_bool()?,
        compile: compile_from_value(v.field("compile")?)?,
        param_grid: v.field("param_grid")?.as_usize()?,
        seed: v.field("seed")?.as_u64()?,
        executor: executor_from_value(v.field("executor")?)?,
        // The tier travels as a top-level versioned field, not inside
        // the config object; the caller overrides this for wire v2.
        tier: QosTier::Exact,
    })
}

fn hotspots_to_value(strategy: &HotspotStrategy) -> Value {
    match strategy {
        HotspotStrategy::MaxDegree => Value::object(vec![("policy", Value::string("max_degree"))]),
        HotspotStrategy::MaxAbsCoupling => {
            Value::object(vec![("policy", Value::string("max_abs_coupling"))])
        }
        HotspotStrategy::Random(seed) => Value::object(vec![
            ("policy", Value::string("random")),
            ("seed", unum(*seed)),
        ]),
        HotspotStrategy::Explicit(qubits) => Value::object(vec![
            ("policy", Value::string("explicit")),
            (
                "qubits",
                Value::Array(qubits.iter().map(|&q| idx(q)).collect()),
            ),
        ]),
    }
}

fn hotspots_from_value(v: &Value) -> Result<HotspotStrategy, FqError> {
    match v.field("policy")?.as_str()? {
        "max_degree" => Ok(HotspotStrategy::MaxDegree),
        "max_abs_coupling" => Ok(HotspotStrategy::MaxAbsCoupling),
        "random" => Ok(HotspotStrategy::Random(v.field("seed")?.as_u64()?)),
        "explicit" => Ok(HotspotStrategy::Explicit(
            v.field("qubits")?
                .as_array()?
                .iter()
                .map(Value::as_usize)
                .collect::<Result<_, _>>()?,
        )),
        other => Err(bad(format!("unknown hotspot policy `{other}`"))),
    }
}

pub(crate) fn compile_to_value(options: CompileOptions) -> Value {
    // Exhaustive on purpose: a new LayoutStrategy variant must fail to
    // compile here until it gets a wire name.
    let layout = match options.layout {
        LayoutStrategy::Trivial => "trivial",
        LayoutStrategy::NoiseAdaptive => "noise_adaptive",
    };
    Value::object(vec![
        ("layout", Value::string(layout)),
        ("optimize", Value::Bool(options.optimize)),
    ])
}

pub(crate) fn compile_from_value(v: &Value) -> Result<CompileOptions, FqError> {
    let layout = match v.field("layout")?.as_str()? {
        "trivial" => LayoutStrategy::Trivial,
        "noise_adaptive" => LayoutStrategy::NoiseAdaptive,
        other => return Err(bad(format!("unknown layout strategy `{other}`"))),
    };
    Ok(CompileOptions {
        layout,
        optimize: v.field("optimize")?.as_bool()?,
    })
}

fn executor_to_value(kind: ExecutorKind) -> Value {
    match kind {
        ExecutorKind::Sequential => Value::object(vec![("kind", Value::string("sequential"))]),
        ExecutorKind::Parallel => Value::object(vec![("kind", Value::string("parallel"))]),
        ExecutorKind::Threads(t) => Value::object(vec![
            ("kind", Value::string("threads")),
            ("threads", idx(t)),
        ]),
    }
}

fn executor_from_value(v: &Value) -> Result<ExecutorKind, FqError> {
    match v.field("kind")?.as_str()? {
        "sequential" => Ok(ExecutorKind::Sequential),
        "parallel" => Ok(ExecutorKind::Parallel),
        "threads" => Ok(ExecutorKind::Threads(v.field("threads")?.as_usize()?)),
        other => Err(bad(format!("unknown executor kind `{other}`"))),
    }
}

fn kind_to_value(kind: JobKind) -> Value {
    match kind {
        JobKind::Baseline => Value::object(vec![("type", Value::string("baseline"))]),
        JobKind::Frozen => Value::object(vec![("type", Value::string("frozen"))]),
        JobKind::Compare => Value::object(vec![("type", Value::string("compare"))]),
        JobKind::Sample { shots } => Value::object(vec![
            ("type", Value::string("sample")),
            ("shots", unum(shots)),
        ]),
    }
}

fn kind_from_value(v: &Value) -> Result<JobKind, FqError> {
    match v.field("type")?.as_str()? {
        "baseline" => Ok(JobKind::Baseline),
        "frozen" => Ok(JobKind::Frozen),
        "compare" => Ok(JobKind::Compare),
        "sample" => Ok(JobKind::Sample {
            shots: v.field("shots")?.as_u64()?,
        }),
        other => Err(bad(format!("unknown job kind `{other}`"))),
    }
}

fn metrics_to_value(metrics: &CircuitMetrics) -> Value {
    Value::object(vec![
        ("logical_cnots", idx(metrics.logical_cnots)),
        ("compiled_cnots", idx(metrics.compiled_cnots)),
        ("swap_count", idx(metrics.swap_count)),
        ("depth", idx(metrics.depth)),
        ("duration_ns", num(metrics.duration_ns)),
    ])
}

fn metrics_from_value(v: &Value) -> Result<CircuitMetrics, FqError> {
    Ok(CircuitMetrics {
        logical_cnots: v.field("logical_cnots")?.as_usize()?,
        compiled_cnots: v.field("compiled_cnots")?.as_usize()?,
        swap_count: v.field("swap_count")?.as_usize()?,
        depth: v.field("depth")?.as_usize()?,
        duration_ns: v.field("duration_ns")?.as_f64()?,
    })
}

fn summary_to_value(summary: &RunSummary) -> Value {
    Value::object(vec![
        ("label", Value::string(&summary.label)),
        ("circuit_qubits", idx(summary.circuit_qubits)),
        ("circuits_executed", unum(summary.circuits_executed)),
        ("metrics", metrics_to_value(&summary.metrics)),
        ("ev_ideal", num(summary.ev_ideal)),
        ("ev_noisy", num(summary.ev_noisy)),
        ("arg", num(summary.arg)),
        ("log_eps", num(summary.log_eps)),
        (
            "params",
            Value::Array(vec![num(summary.params.0), num(summary.params.1)]),
        ),
    ])
}

fn summary_from_value(v: &Value) -> Result<RunSummary, FqError> {
    let params = v.field("params")?.as_array()?;
    if params.len() != 2 {
        return Err(bad("params is a [gamma, beta] pair"));
    }
    Ok(RunSummary {
        label: v.field("label")?.as_str()?.to_string(),
        circuit_qubits: v.field("circuit_qubits")?.as_usize()?,
        circuits_executed: v.field("circuits_executed")?.as_u64()?,
        metrics: metrics_from_value(v.field("metrics")?)?,
        ev_ideal: v.field("ev_ideal")?.as_f64()?,
        ev_noisy: v.field("ev_noisy")?.as_f64()?,
        arg: v.field("arg")?.as_f64()?,
        log_eps: v.field("log_eps")?.as_f64()?,
        params: (params[0].as_f64()?, params[1].as_f64()?),
    })
}

fn report_to_value(report: &Report) -> Value {
    Value::object(vec![
        ("baseline", summary_to_value(&report.baseline)),
        ("frozen", summary_to_value(&report.frozen)),
        (
            "frozen_qubits",
            Value::Array(report.frozen_qubits.iter().map(|&q| idx(q)).collect()),
        ),
        ("improvement", num(report.improvement)),
    ])
}

fn report_from_value(v: &Value) -> Result<Report, FqError> {
    Ok(Report {
        baseline: summary_from_value(v.field("baseline")?)?,
        frozen: summary_from_value(v.field("frozen")?)?,
        frozen_qubits: v
            .field("frozen_qubits")?
            .as_array()?
            .iter()
            .map(Value::as_usize)
            .collect::<Result<_, _>>()?,
        improvement: v.field("improvement")?.as_f64()?,
    })
}

fn outcome_to_value(outcome: &SolveOutcome) -> Value {
    // HashMap-backed distributions iterate nondeterministically; sort by
    // outcome index so the wire form is canonical.
    let mut entries: Vec<(&SpinVec, u64)> = outcome.distribution.iter().collect();
    entries.sort_by_key(|(z, _)| z.to_index());
    Value::object(vec![
        ("best", Value::string(outcome.best.to_bitstring())),
        ("energy", num(outcome.energy)),
        (
            "distribution",
            Value::Array(
                entries
                    .into_iter()
                    .map(|(z, count)| {
                        Value::Array(vec![Value::string(z.to_bitstring()), unum(count)])
                    })
                    .collect(),
            ),
        ),
        (
            "frozen_qubits",
            Value::Array(outcome.frozen_qubits.iter().map(|&q| idx(q)).collect()),
        ),
    ])
}

fn outcome_from_value(v: &Value) -> Result<SolveOutcome, FqError> {
    let best = SpinVec::parse_bitstring(v.field("best")?.as_str()?)?;
    let mut distribution = OutputDistribution::new(best.len());
    for item in v.field("distribution")?.as_array()? {
        let pair = item.as_array()?;
        if pair.len() != 2 {
            return Err(bad("distribution entries are [bitstring, count] pairs"));
        }
        let outcome = SpinVec::parse_bitstring(pair[0].as_str()?)?;
        // record() asserts on width; turn corrupt documents into errors
        // instead of panics.
        if outcome.len() != best.len() {
            return Err(bad(format!(
                "distribution outcome has {} spins, expected {}",
                outcome.len(),
                best.len()
            )));
        }
        distribution.record(outcome, pair[1].as_u64()?);
    }
    Ok(SolveOutcome {
        best,
        energy: v.field("energy")?.as_f64()?,
        distribution,
        frozen_qubits: v
            .field("frozen_qubits")?
            .as_array()?
            .iter()
            .map(Value::as_usize)
            .collect::<Result<_, _>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ErrorModel, JobBuilder, QosTier};

    #[test]
    fn spec_round_trips_byte_for_byte() {
        let spec = JobBuilder::new()
            .barabasi_albert(12, 1, 7)
            .device(DeviceSpec::IbmAuckland)
            .backend(BackendSpec::NoiseModel)
            .num_frozen(2)
            .frozen()
            .build()
            .unwrap();
        let text = spec.to_json();
        let back = JobSpec::from_json(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn explicit_ising_spec_round_trips() {
        let mut model = IsingModel::new(4);
        model.set_coupling(0, 1, 1.0).unwrap();
        model.set_coupling(1, 2, -0.5).unwrap();
        model.set_linear(3, 0.25).unwrap();
        model.set_offset(1.5);
        let spec = JobBuilder::new()
            .ising(model)
            .device(DeviceSpec::IbmMontreal)
            .compare()
            .build()
            .unwrap();
        let text = spec.to_json();
        let back = JobSpec::from_json(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn unknown_names_fail_loudly() {
        let spec = JobBuilder::new()
            .barabasi_albert(8, 1, 1)
            .device(DeviceSpec::IbmMontreal)
            .baseline()
            .build()
            .unwrap();
        let text = spec.to_json();
        for (from, to) in [
            ("ibmq_montreal", "ibm_atlantis"),
            ("\"sim\"", "\"warp\""),
            ("baseline", "vibes"),
            ("\"v\":1", "\"v\":2"),
        ] {
            let mutated = text.replace(from, to);
            assert!(
                matches!(JobSpec::from_json(&mutated), Err(FqError::Serde(_))),
                "`{to}` must be rejected"
            );
        }
    }

    fn spec_with(tier: Option<QosTier>) -> JobSpec {
        let mut builder = JobBuilder::new()
            .barabasi_albert(8, 1, 1)
            .device(DeviceSpec::IbmMontreal)
            .baseline();
        if let Some(tier) = tier {
            builder = builder.tier(tier);
        }
        builder.build().unwrap()
    }

    #[test]
    fn tiered_specs_use_wire_v2_and_exact_stays_v1() {
        let exact = spec_with(None).to_json();
        assert!(exact.contains("\"v\":1"), "{exact}");
        assert!(!exact.contains("\"tier\""), "{exact}");

        let tiered = spec_with(Some(QosTier::Fast));
        let text = tiered.to_json();
        assert!(text.contains("\"v\":2"), "{text}");
        assert!(text.contains("\"tier\":\"fast\""), "{text}");
        let back = JobSpec::from_json(&text).unwrap();
        assert_eq!(back, tiered);
        assert_eq!(back.to_json(), text, "byte round-trip");
    }

    #[test]
    fn non_canonical_tier_encodings_are_rejected() {
        let tiered = spec_with(Some(QosTier::Balanced)).to_json();

        // A tier field on wire v1 — v1 predates tiers.
        let v1_with_tier = tiered.replace("\"v\":2", "\"v\":1");
        assert!(JobSpec::from_json(&v1_with_tier).is_err());

        // Wire v2 spelling out the default tier — the canonical form of
        // an exact spec is v1 with no tier field.
        let v2_exact = tiered.replace("\"tier\":\"balanced\"", "\"tier\":\"exact\"");
        assert!(JobSpec::from_json(&v2_exact).is_err());

        // Wire v2 with the tier field missing entirely.
        let v2_missing = tiered.replace(",\"tier\":\"balanced\"", "");
        let err = JobSpec::from_json(&v2_missing).unwrap_err();
        assert!(
            err.to_string().contains("unsupported wire version"),
            "{err}"
        );

        // A tier name this build does not know gets its own variant so
        // the service edge can map it to a structured 422.
        let unknown = tiered.replace("\"tier\":\"balanced\"", "\"tier\":\"turbo\"");
        assert!(matches!(
            JobSpec::from_json(&unknown),
            Err(FqError::UnknownTier(name)) if name == "turbo"
        ));
    }

    #[test]
    fn approx_results_carry_their_error_model_on_wire_v2() {
        let exact = spec_with(None).run().unwrap();
        assert!(exact.error_model().is_none());
        let exact_text = exact.to_json();
        assert!(exact_text.contains("\"v\":1"), "{exact_text}");
        assert!(!exact_text.contains("error_model"), "{exact_text}");

        let result = spec_with(Some(QosTier::Balanced)).run().unwrap();
        let em = *result.error_model().expect("non-exact result has a model");
        assert_eq!(em, ErrorModel::balanced());
        let text = result.to_json();
        assert!(text.contains("\"v\":2"), "{text}");
        assert!(text.contains("\"error_model\""), "{text}");
        assert!(text.contains("\"tier\":\"balanced\""), "{text}");
        let back = JobResult::from_json(&text).unwrap();
        assert_eq!(back, result);
        assert_eq!(back.to_json(), text, "byte round-trip");

        // An error model on a v1 result is as non-canonical as a tier
        // on a v1 spec.
        let v1_with_model = text.replace("\"v\":2", "\"v\":1");
        assert!(JobResult::from_json(&v1_with_model).is_err());
    }
}
