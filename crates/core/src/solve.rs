//! Sampling-based end-to-end solving: run the (pruned) sub-circuits on the
//! noisy simulator, decode every outcome back to the parent space, and
//! pick the best solution (§3.6) — including the bit-flip inference for
//! pruned partners (§3.7.2).
//!
//! Like the analytic pipeline, this is a thin wrapper over the
//! plan/execute core: one shared compiled template per sub-circuit shape,
//! branches sampled through the configured [`Executor`](crate::Executor).

use fq_ising::{IsingModel, OutputDistribution, SpinVec};
use fq_transpile::Device;
use serde::{Deserialize, Serialize};

use crate::plan::plan_execution;
use crate::{FrozenQubitsConfig, FrozenQubitsError};

/// The outcome of a sampling run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolveOutcome {
    /// The lowest-energy decoded outcome.
    pub best: SpinVec,
    /// Its energy under the parent Hamiltonian.
    pub energy: f64,
    /// The union distribution over the parent variables (decoded
    /// sub-circuit outcomes, including inferred partner outcomes).
    pub distribution: OutputDistribution,
    /// Which qubits were frozen.
    pub frozen_qubits: Vec<usize>,
}

/// Solves `model` end to end with FrozenQubits on a noisy device:
/// partition, per-sub-problem parameter optimization, compilation,
/// Monte-Carlo noisy sampling, decoding, and the final `min`.
///
/// Use `config.num_frozen = 0` for the plain QAOA baseline.
///
/// # Errors
///
/// Propagates pipeline errors; the statevector width limit applies, so
/// this entry point is for small-`N` studies (the analytic pipeline in
/// [`crate::compare`] covers every scale).
///
/// # Example
///
/// ```
/// use fq_graphs::{gen, to_ising_pm1};
/// use fq_transpile::Device;
/// use frozenqubits::{solve_with_sampling, FrozenQubitsConfig};
///
/// let model = to_ising_pm1(&gen::barabasi_albert(8, 1, 1)?, 1);
/// let outcome = solve_with_sampling(
///     &model,
///     &Device::ibm_montreal(),
///     &FrozenQubitsConfig::default(),
///     2048,
/// )?;
/// assert_eq!(outcome.best.len(), 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn solve_with_sampling(
    model: &IsingModel,
    device: &Device,
    config: &FrozenQubitsConfig,
    shots: u64,
) -> Result<SolveOutcome, FrozenQubitsError> {
    let plan = plan_execution(model, device, config)?;
    let samples = config
        .build_executor()
        .sample(&plan, device, config, shots)?;

    let mut union = OutputDistribution::new(model.num_vars());
    let mut best: Option<(SpinVec, f64)> = None;
    for branch in &samples {
        consider(&mut best, model, &branch.decoded)?;
        union.merge(&branch.decoded)?;
        if let Some(partner) = &branch.partner_decoded {
            consider(&mut best, model, partner)?;
            union.merge(partner)?;
        }
    }

    let (best, energy) = best.ok_or_else(|| {
        FrozenQubitsError::InvalidConfig("no sub-problem produced any outcome".into())
    })?;
    Ok(SolveOutcome {
        best,
        energy,
        distribution: union,
        frozen_qubits: plan.frozen_qubits().to_vec(),
    })
}

fn consider(
    best: &mut Option<(SpinVec, f64)>,
    model: &IsingModel,
    dist: &OutputDistribution,
) -> Result<(), FrozenQubitsError> {
    let (z, e) = dist.best(model)?;
    if best.as_ref().is_none_or(|(_, be)| e < *be) {
        *best = Some((z, e));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_graphs::{gen, to_ising_pm1};
    use fq_ising::solve::exact_solve;
    use fq_ising::Spin;
    use fq_transpile::Device;

    fn model(n: usize, seed: u64) -> IsingModel {
        to_ising_pm1(&gen::barabasi_albert(n, 1, seed).unwrap(), seed)
    }

    #[test]
    fn finds_the_global_optimum_on_small_instances() {
        let m = model(8, 7);
        let exact = exact_solve(&m).unwrap();
        let out = solve_with_sampling(
            &m,
            &Device::ibm_auckland(),
            &FrozenQubitsConfig::default(),
            4096,
        )
        .unwrap();
        assert!(
            (out.energy - exact.energy).abs() < 1e-9,
            "sampled best {} vs exact {}",
            out.energy,
            exact.energy
        );
    }

    #[test]
    fn union_distribution_covers_both_half_spaces() {
        let m = model(6, 9);
        let out = solve_with_sampling(
            &m,
            &Device::ibm_montreal(),
            &FrozenQubitsConfig::default(),
            1024,
        )
        .unwrap();
        let hotspot = out.frozen_qubits[0];
        let mut saw_up = false;
        let mut saw_down = false;
        for (z, _) in out.distribution.iter() {
            match z.spin(hotspot) {
                Spin::UP => saw_up = true,
                _ => saw_down = true,
            }
        }
        assert!(
            saw_up && saw_down,
            "partner inference must populate both branches"
        );
        // Total shots double via partner inference (m=1, pruned).
        assert_eq!(out.distribution.total_shots(), 2 * 1024);
    }

    #[test]
    fn m0_behaves_like_plain_qaoa() {
        let m = model(6, 11);
        let cfg = FrozenQubitsConfig::with_frozen(0);
        let out = solve_with_sampling(&m, &Device::ibm_montreal(), &cfg, 512).unwrap();
        assert!(out.frozen_qubits.is_empty());
        assert_eq!(out.distribution.total_shots(), 512);
        assert_eq!(out.best.len(), 6);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = model(6, 13);
        let cfg = FrozenQubitsConfig::default();
        let a = solve_with_sampling(&m, &Device::ibm_montreal(), &cfg, 256).unwrap();
        let b = solve_with_sampling(&m, &Device::ibm_montreal(), &cfg, 256).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.distribution, b.distribution);
    }
}
