//! Sampling-based end-to-end solving: run the (pruned) sub-circuits on the
//! noisy simulator, decode every outcome back to the parent space, and
//! pick the best solution (§3.6) — including the bit-flip inference for
//! pruned partners (§3.7.2).
//!
//! Like the analytic pipeline, this is a thin wrapper over the
//! plan/execute core: one shared compiled template per sub-circuit shape,
//! branches sampled through the configured [`Executor`](crate::Executor).

use fq_ising::{IsingModel, OutputDistribution, SpinVec};
use fq_transpile::Device;
use serde::{Deserialize, Serialize};

use crate::{FqError, FrozenQubitsConfig};

/// The outcome of a sampling run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolveOutcome {
    /// The lowest-energy decoded outcome.
    pub best: SpinVec,
    /// Its energy under the parent Hamiltonian.
    pub energy: f64,
    /// The union distribution over the parent variables (decoded
    /// sub-circuit outcomes, including inferred partner outcomes).
    pub distribution: OutputDistribution,
    /// Which qubits were frozen.
    pub frozen_qubits: Vec<usize>,
}

/// Solves `model` end to end with FrozenQubits on a noisy device:
/// partition, per-sub-problem parameter optimization, compilation,
/// Monte-Carlo noisy sampling, decoding, and the final `min`.
///
/// Use `config.num_frozen = 0` for the plain QAOA baseline.
///
/// # Errors
///
/// Propagates pipeline errors; the statevector width limit applies, so
/// this entry point is for small-`N` studies (the analytic pipeline in
/// [`crate::compare`] covers every scale).
///
/// # Example
///
/// ```
/// use frozenqubits::api::{DeviceSpec, JobBuilder};
///
/// let spec = JobBuilder::new()
///     .barabasi_albert(8, 1, 1)
///     .device(DeviceSpec::IbmMontreal)
///     .sample(2048)
///     .build()?;
/// let outcome = spec.run()?.into_sample()?;
/// assert_eq!(outcome.best.len(), 8);
/// # Ok::<(), frozenqubits::FqError>(())
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use `api::JobBuilder` with `.sample(shots)` (this is a thin wrapper over it)"
)]
pub fn solve_with_sampling(
    model: &IsingModel,
    device: &Device,
    config: &FrozenQubitsConfig,
    shots: u64,
) -> Result<SolveOutcome, FqError> {
    crate::api::Job::from_parts(model, device, config, crate::api::JobKind::Sample { shots })
        .run()?
        .into_sample()
}

#[cfg(test)]
#[allow(deprecated)] // the wrapper stays covered until removal
mod tests {
    use super::*;
    use fq_graphs::{gen, to_ising_pm1};
    use fq_ising::solve::exact_solve;
    use fq_ising::Spin;
    use fq_transpile::Device;

    fn model(n: usize, seed: u64) -> IsingModel {
        to_ising_pm1(&gen::barabasi_albert(n, 1, seed).unwrap(), seed)
    }

    #[test]
    fn finds_the_global_optimum_on_small_instances() {
        let m = model(8, 7);
        let exact = exact_solve(&m).unwrap();
        let out = solve_with_sampling(
            &m,
            &Device::ibm_auckland(),
            &FrozenQubitsConfig::default(),
            4096,
        )
        .unwrap();
        assert!(
            (out.energy - exact.energy).abs() < 1e-9,
            "sampled best {} vs exact {}",
            out.energy,
            exact.energy
        );
    }

    #[test]
    fn union_distribution_covers_both_half_spaces() {
        let m = model(6, 9);
        let out = solve_with_sampling(
            &m,
            &Device::ibm_montreal(),
            &FrozenQubitsConfig::default(),
            1024,
        )
        .unwrap();
        let hotspot = out.frozen_qubits[0];
        let mut saw_up = false;
        let mut saw_down = false;
        for (z, _) in out.distribution.iter() {
            match z.spin(hotspot) {
                Spin::UP => saw_up = true,
                _ => saw_down = true,
            }
        }
        assert!(
            saw_up && saw_down,
            "partner inference must populate both branches"
        );
        // Total shots double via partner inference (m=1, pruned).
        assert_eq!(out.distribution.total_shots(), 2 * 1024);
    }

    #[test]
    fn m0_behaves_like_plain_qaoa() {
        let m = model(6, 11);
        let cfg = FrozenQubitsConfig::with_frozen(0);
        let out = solve_with_sampling(&m, &Device::ibm_montreal(), &cfg, 512).unwrap();
        assert!(out.frozen_qubits.is_empty());
        assert_eq!(out.distribution.total_shots(), 512);
        assert_eq!(out.best.len(), 6);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = model(6, 13);
        let cfg = FrozenQubitsConfig::default();
        let a = solve_with_sampling(&m, &Device::ibm_montreal(), &cfg, 256).unwrap();
        let b = solve_with_sampling(&m, &Device::ibm_montreal(), &cfg, 256).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.distribution, b.distribution);
    }
}
