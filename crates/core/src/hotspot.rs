//! Hotspot selection: which qubits to freeze (§3.5).

use fq_ising::IsingModel;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::FqError;

/// The policy for choosing the `m` qubits to freeze.
///
/// The paper freezes the highest-degree nodes; the alternatives exist for
/// the ablation study showing that hotspot choice (not just freezing
/// anything) is what drives the CNOT savings.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum HotspotStrategy {
    /// Highest degree first (the paper's policy).
    #[default]
    MaxDegree,
    /// Largest total |J| mass first (weighted-degree variant).
    MaxAbsCoupling,
    /// Uniformly random qubits (ablation control), seeded.
    Random(u64),
    /// A user-provided list, taken in order.
    Explicit(Vec<usize>),
}

/// Selects `m` qubits to freeze from `model` under `strategy`.
///
/// # Errors
///
/// Returns [`FqError::TooManyFrozen`] when `m > num_vars` and
/// [`FqError::InvalidConfig`] for bad explicit lists.
///
/// # Example
///
/// ```
/// use fq_ising::IsingModel;
/// use frozenqubits::{select_hotspots, HotspotStrategy};
///
/// // Fig. 1(c): a 7-node star — z6 the hub.
/// let mut m = IsingModel::new(7);
/// for i in 0..6 {
///     m.set_coupling(6, i, 1.0)?;
/// }
/// assert_eq!(select_hotspots(&m, 1, &HotspotStrategy::MaxDegree)?, vec![6]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn select_hotspots(
    model: &IsingModel,
    m: usize,
    strategy: &HotspotStrategy,
) -> Result<Vec<usize>, FqError> {
    let n = model.num_vars();
    if m > n {
        return Err(FqError::TooManyFrozen { m, num_vars: n });
    }
    match strategy {
        HotspotStrategy::MaxDegree => Ok(model.hotspots().into_iter().take(m).collect()),
        HotspotStrategy::MaxAbsCoupling => {
            let mut mass = vec![0.0f64; n];
            for ((i, j), jij) in model.couplings() {
                mass[i] += jij.abs();
                mass[j] += jij.abs();
            }
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                mass[b]
                    .partial_cmp(&mass[a])
                    .expect("finite coupling mass")
                    .then(a.cmp(&b))
            });
            Ok(order.into_iter().take(m).collect())
        }
        HotspotStrategy::Random(seed) => {
            let mut rng = StdRng::seed_from_u64(*seed);
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng);
            Ok(order.into_iter().take(m).collect())
        }
        HotspotStrategy::Explicit(list) => {
            if list.len() < m {
                return Err(FqError::InvalidConfig(format!(
                    "explicit hotspot list has {} entries but m = {m}",
                    list.len()
                )));
            }
            let chosen: Vec<usize> = list[..m].to_vec();
            let mut seen = std::collections::BTreeSet::new();
            for &q in &chosen {
                if q >= n {
                    return Err(FqError::InvalidConfig(format!(
                        "explicit hotspot {q} out of range for {n} variables"
                    )));
                }
                if !seen.insert(q) {
                    return Err(FqError::InvalidConfig(format!(
                        "explicit hotspot {q} repeated"
                    )));
                }
            }
            Ok(chosen)
        }
    }
}

/// How many quadratic terms freezing the given qubits eliminates — the
/// CNOT-saving potential (2 CNOTs per edge per layer).
#[must_use]
pub fn edges_eliminated(model: &IsingModel, frozen: &[usize]) -> usize {
    let set: std::collections::BTreeSet<usize> = frozen.iter().copied().collect();
    model
        .couplings()
        .filter(|((i, j), _)| set.contains(i) || set.contains(j))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub_model() -> IsingModel {
        // Node 2 has degree 4; node 0 has degree 2; others degree 1-2.
        let mut m = IsingModel::new(6);
        for i in [0, 1, 3, 4] {
            m.set_coupling(2, i, 1.0).unwrap();
        }
        m.set_coupling(0, 5, -3.0).unwrap();
        m
    }

    #[test]
    fn max_degree_picks_the_hub() {
        let m = hub_model();
        assert_eq!(
            select_hotspots(&m, 1, &HotspotStrategy::MaxDegree).unwrap(),
            vec![2]
        );
        assert_eq!(
            select_hotspots(&m, 2, &HotspotStrategy::MaxDegree).unwrap(),
            vec![2, 0]
        );
    }

    #[test]
    fn abs_coupling_can_differ_from_degree() {
        let m = hub_model();
        // Node 0 mass: 1 + 3 = 4 = node 2 mass (1·4); tie broken by index.
        let picks = select_hotspots(&m, 1, &HotspotStrategy::MaxAbsCoupling).unwrap();
        assert_eq!(picks, vec![0]);
    }

    #[test]
    fn random_is_seeded_and_in_range() {
        let m = hub_model();
        let a = select_hotspots(&m, 3, &HotspotStrategy::Random(5)).unwrap();
        let b = select_hotspots(&m, 3, &HotspotStrategy::Random(5)).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().all(|&q| q < 6));
        let unique: std::collections::BTreeSet<usize> = a.iter().copied().collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn explicit_is_validated() {
        let m = hub_model();
        assert_eq!(
            select_hotspots(&m, 2, &HotspotStrategy::Explicit(vec![5, 1])).unwrap(),
            vec![5, 1]
        );
        assert!(select_hotspots(&m, 2, &HotspotStrategy::Explicit(vec![5])).is_err());
        assert!(select_hotspots(&m, 1, &HotspotStrategy::Explicit(vec![9])).is_err());
        assert!(select_hotspots(&m, 2, &HotspotStrategy::Explicit(vec![1, 1])).is_err());
    }

    #[test]
    fn freezing_hub_saves_most_edges() {
        let m = hub_model();
        assert_eq!(edges_eliminated(&m, &[2]), 4);
        assert_eq!(edges_eliminated(&m, &[3]), 1);
        // Edges touching 2 or 0: the four spokes of 2 plus (0, 5).
        assert_eq!(edges_eliminated(&m, &[2, 0]), 5);
    }

    #[test]
    fn too_many_frozen_is_rejected() {
        let m = hub_model();
        assert!(matches!(
            select_hotspots(&m, 7, &HotspotStrategy::MaxDegree),
            Err(FqError::TooManyFrozen { .. })
        ));
    }
}
