//! The crate-level error type.

use std::error::Error;
use std::fmt;

/// Errors produced by the FrozenQubits pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FrozenQubitsError {
    /// Freezing more qubits than the problem has.
    TooManyFrozen {
        /// Requested freeze count `m`.
        m: usize,
        /// Problem variable count.
        num_vars: usize,
    },
    /// Invalid configuration values.
    InvalidConfig(String),
    /// An Ising-layer error.
    Ising(fq_ising::IsingError),
    /// A circuit-layer error.
    Circuit(fq_circuit::CircuitError),
    /// A transpilation error.
    Transpile(fq_transpile::TranspileError),
    /// A simulation error.
    Sim(fq_sim::SimError),
}

impl fmt::Display for FrozenQubitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrozenQubitsError::TooManyFrozen { m, num_vars } => {
                write!(f, "cannot freeze {m} of {num_vars} qubits")
            }
            FrozenQubitsError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            FrozenQubitsError::Ising(e) => write!(f, "ising error: {e}"),
            FrozenQubitsError::Circuit(e) => write!(f, "circuit error: {e}"),
            FrozenQubitsError::Transpile(e) => write!(f, "transpile error: {e}"),
            FrozenQubitsError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl Error for FrozenQubitsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrozenQubitsError::Ising(e) => Some(e),
            FrozenQubitsError::Circuit(e) => Some(e),
            FrozenQubitsError::Transpile(e) => Some(e),
            FrozenQubitsError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fq_ising::IsingError> for FrozenQubitsError {
    fn from(e: fq_ising::IsingError) -> Self {
        FrozenQubitsError::Ising(e)
    }
}

impl From<fq_circuit::CircuitError> for FrozenQubitsError {
    fn from(e: fq_circuit::CircuitError) -> Self {
        FrozenQubitsError::Circuit(e)
    }
}

impl From<fq_transpile::TranspileError> for FrozenQubitsError {
    fn from(e: fq_transpile::TranspileError) -> Self {
        FrozenQubitsError::Transpile(e)
    }
}

impl From<fq_sim::SimError> for FrozenQubitsError {
    fn from(e: fq_sim::SimError) -> Self {
        FrozenQubitsError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = FrozenQubitsError::TooManyFrozen { m: 3, num_vars: 2 };
        assert!(!e.to_string().is_empty());
        let wrapped: FrozenQubitsError = fq_ising::IsingError::Empty.into();
        assert!(wrapped.source().is_some());
    }
}
