//! The workspace-wide error type.
//!
//! [`FqError`] is the single error enum at the public boundary: every
//! sibling crate's error converts into it via `From`, so application code
//! (examples, the batch runner, the `fq-serve` HTTP service) handles one
//! type instead of a `Box<dyn Error>` per call site — and the service
//! maps each variant onto an HTTP status class in one place.

use std::error::Error;
use std::fmt;

/// Errors produced anywhere in the FrozenQubits workspace.
///
/// Carries `From` impls for every sibling crate error — `fq-ising`,
/// `fq-circuit`, `fq-transpile`, `fq-sim`, `fq-graphs`, `fq-cutqc` — plus
/// the pipeline's own validation variants, so `?` works across the whole
/// stack and `source()` exposes the underlying cause.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FqError {
    /// Freezing more qubits than the problem has.
    TooManyFrozen {
        /// Requested freeze count `m`.
        m: usize,
        /// Problem variable count.
        num_vars: usize,
    },
    /// Invalid configuration values.
    InvalidConfig(String),
    /// An Ising-layer error.
    Ising(fq_ising::IsingError),
    /// A circuit-layer error.
    Circuit(fq_circuit::CircuitError),
    /// A transpilation error.
    Transpile(fq_transpile::TranspileError),
    /// A simulation error.
    Sim(fq_sim::SimError),
    /// A graph-construction or graph-generation error.
    Graph(fq_graphs::GraphError),
    /// A wire-cutting planner error.
    Cut(fq_cutqc::CutError),
    /// An unrecognized QoS-tier name in a spec or scenario.
    UnknownTier(String),
    /// A (de)serialization error at the job-spec wire boundary.
    Serde(String),
    /// An I/O error, stringified (keeps `FqError: Clone + PartialEq`).
    Io(String),
}

/// The pre-0.2 name of [`FqError`].
#[deprecated(since = "0.2.0", note = "renamed to `FqError`")]
pub type FrozenQubitsError = FqError;

impl fmt::Display for FqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FqError::TooManyFrozen { m, num_vars } => {
                write!(f, "cannot freeze {m} of {num_vars} qubits")
            }
            FqError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            FqError::Ising(e) => write!(f, "ising error: {e}"),
            FqError::Circuit(e) => write!(f, "circuit error: {e}"),
            FqError::Transpile(e) => write!(f, "transpile error: {e}"),
            FqError::Sim(e) => write!(f, "simulation error: {e}"),
            FqError::Graph(e) => write!(f, "graph error: {e}"),
            FqError::Cut(e) => write!(f, "cut-planner error: {e}"),
            FqError::UnknownTier(name) => {
                write!(
                    f,
                    "unknown QoS tier `{name}` (expected exact, balanced or fast)"
                )
            }
            FqError::Serde(msg) => write!(f, "serialization error: {msg}"),
            FqError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl Error for FqError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FqError::Ising(e) => Some(e),
            FqError::Circuit(e) => Some(e),
            FqError::Transpile(e) => Some(e),
            FqError::Sim(e) => Some(e),
            FqError::Graph(e) => Some(e),
            FqError::Cut(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fq_ising::IsingError> for FqError {
    fn from(e: fq_ising::IsingError) -> Self {
        FqError::Ising(e)
    }
}

impl From<fq_circuit::CircuitError> for FqError {
    fn from(e: fq_circuit::CircuitError) -> Self {
        FqError::Circuit(e)
    }
}

impl From<fq_transpile::TranspileError> for FqError {
    fn from(e: fq_transpile::TranspileError) -> Self {
        FqError::Transpile(e)
    }
}

impl From<fq_sim::SimError> for FqError {
    fn from(e: fq_sim::SimError) -> Self {
        FqError::Sim(e)
    }
}

impl From<fq_graphs::GraphError> for FqError {
    fn from(e: fq_graphs::GraphError) -> Self {
        FqError::Graph(e)
    }
}

impl From<fq_cutqc::CutError> for FqError {
    fn from(e: fq_cutqc::CutError) -> Self {
        FqError::Cut(e)
    }
}

impl From<serde::json::JsonError> for FqError {
    fn from(e: serde::json::JsonError) -> Self {
        FqError::Serde(e.0)
    }
}

impl From<std::io::Error> for FqError {
    fn from(e: std::io::Error) -> Self {
        FqError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = FqError::TooManyFrozen { m: 3, num_vars: 2 };
        assert!(!e.to_string().is_empty());
        let wrapped: FqError = fq_ising::IsingError::Empty.into();
        assert!(wrapped.source().is_some());
    }

    #[test]
    fn every_crate_error_converts() {
        let graph: FqError = fq_graphs::GraphError::SelfLoop(1).into();
        assert!(graph.source().is_some());
        let cut: FqError = fq_cutqc::CutError::EmptyModel.into();
        assert!(cut.source().is_some());
        let io: FqError = std::io::Error::other("disk on fire").into();
        assert!(matches!(&io, FqError::Io(msg) if msg.contains("disk")));
        let serde_err: FqError = serde::json::JsonError("bad token".into()).into();
        assert!(matches!(&serde_err, FqError::Serde(msg) if msg == "bad token"));
    }
}
