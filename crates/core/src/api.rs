//! The unified job API — the front door of the framework.
//!
//! Everything the pipeline can do is expressed as a **job**: a problem
//! (explicit Ising model, weighted graph, or generator family), a device,
//! a [`FrozenQubitsConfig`], a [`Backend`] choice and a [`JobKind`].
//! The flow is
//!
//! ```text
//! JobBuilder ──build()──▶ JobSpec ──run()──▶ JobResult
//!    (typed, validated)   (serializable)     (summary / report / samples)
//! ```
//!
//! * [`JobBuilder`] validates at **build time** — freezing more qubits
//!   than the problem has, zero shots, or a multi-layer request beyond
//!   the statevector width limit fail before any circuit is synthesized.
//! * [`JobSpec`] is plain data with a pinned JSON wire format
//!   ([`JobSpec::to_json`] / [`JobSpec::from_json`]), so specs can be
//!   queued, logged and replayed byte-for-byte — the wire format the
//!   `fq-serve` HTTP job service speaks verbatim.
//! * [`Backend`] makes the execution substrate explicit: the statevector
//!   simulator is [`SimBackend`], *chosen*, not assumed, and
//!   [`NoiseModelBackend`] trades lightcone fidelity modelling for a
//!   cheaper global process-fidelity estimate.
//! * [`BatchRunner`] executes many specs against one shared
//!   [`TemplateCache`], extending the per-job
//!   compile-once amortization across jobs.
//!
//! # Example
//!
//! ```
//! use frozenqubits::api::{DeviceSpec, JobBuilder};
//!
//! let spec = JobBuilder::new()
//!     .barabasi_albert(12, 1, 7)
//!     .device(DeviceSpec::IbmMontreal)
//!     .compare()
//!     .build()?;
//! let report = spec.run()?.into_compare()?;
//! assert!(report.improvement > 1.0, "freezing the hotspot improves fidelity");
//! # Ok::<(), frozenqubits::FqError>(())
//! ```

mod backend;
mod batch;
pub(crate) mod wire;

pub use crate::config::QosTier;
pub(crate) use backend::noise_model_sampling_error;
pub use backend::{Backend, BackendSpec, NoiseModelBackend, SimBackend};
pub use batch::BatchRunner;

use fq_graphs::{gen, to_ising_pm1, to_ising_unit, Graph};
use fq_ising::{IsingModel, OutputDistribution, SpinVec};
use fq_transpile::Device;

use crate::pipeline::summarize_outcomes;
use crate::plan::{plan_execution_cached, ShapeSignature, TemplateCache};
use crate::solve::SolveOutcome;
use crate::store::TemplateKey;
use crate::{metrics, FqError, FrozenQubitsConfig, Report, RunSummary};

/// How a job's problem Hamiltonian is obtained.
///
/// Explicit models travel in full; graph and generator forms stay tiny on
/// the wire and are materialized deterministically at run time.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ProblemSpec {
    /// An explicit Ising model.
    Ising(IsingModel),
    /// An undirected simple graph plus an edge-weighting rule.
    Graph {
        /// Node count.
        num_nodes: usize,
        /// Undirected edges as `(a, b)` pairs.
        edges: Vec<(usize, usize)>,
        /// How edge weights become coupling coefficients.
        weighting: GraphWeighting,
    },
    /// A Barabási–Albert power-law instance (the paper's primary
    /// benchmark family) with ±1 edge weights drawn from `seed`.
    BarabasiAlbert {
        /// Node count.
        n: usize,
        /// Attachment degree `d_BA`.
        d: usize,
        /// Generator and weighting seed.
        seed: u64,
    },
}

/// Edge-weighting rule for [`ProblemSpec::Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphWeighting {
    /// Every edge gets coupling `+1` (Max-Cut style).
    Unit,
    /// Random ±1 couplings drawn from `seed` (the paper's §4.1 setup).
    Pm1 {
        /// Weighting seed.
        seed: u64,
    },
}

impl ProblemSpec {
    /// The problem width (variable count), computed without
    /// materializing the model.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        match self {
            ProblemSpec::Ising(model) => model.num_vars(),
            ProblemSpec::Graph { num_nodes, .. } => *num_nodes,
            ProblemSpec::BarabasiAlbert { n, .. } => *n,
        }
    }

    /// Materializes the problem Hamiltonian.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction and generator errors as
    /// [`FqError::Graph`].
    pub fn resolve(&self) -> Result<IsingModel, FqError> {
        match self {
            ProblemSpec::Ising(model) => Ok(model.clone()),
            ProblemSpec::Graph {
                num_nodes,
                edges,
                weighting,
            } => {
                let mut graph = Graph::new(*num_nodes);
                for &(a, b) in edges {
                    graph.add_edge(a, b)?;
                }
                Ok(match weighting {
                    GraphWeighting::Unit => to_ising_unit(&graph),
                    GraphWeighting::Pm1 { seed } => to_ising_pm1(&graph, *seed),
                })
            }
            ProblemSpec::BarabasiAlbert { n, d, seed } => {
                Ok(to_ising_pm1(&gen::barabasi_albert(*n, *d, *seed)?, *seed))
            }
        }
    }
}

/// A service-assigned job identifier with a stable wire form.
///
/// The HTTP service (`fq-serve`) mints one per submitted [`JobSpec`] and
/// hands it back for polling; it lives here so any future front door
/// (gRPC, CLI queue files, sharded dispatchers) names jobs the same way.
/// The wire form is `job-` followed by exactly 16 lower-case hex digits
/// (`job-000000000000002a`), so IDs sort lexicographically in submission
/// order and survive logs, URLs and JSON untouched.
///
/// # Examples
///
/// ```
/// use frozenqubits::api::JobId;
///
/// let id = JobId::new(42);
/// assert_eq!(id.to_string(), "job-000000000000002a");
/// assert_eq!("job-000000000000002a".parse::<JobId>(), Ok(id));
/// assert!("job-42".parse::<JobId>().is_err(), "digits are zero-padded");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

impl JobId {
    /// Wraps a raw sequence number.
    #[must_use]
    pub fn new(value: u64) -> JobId {
        JobId(value)
    }

    /// The raw sequence number.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{:016x}", self.0)
    }
}

impl std::str::FromStr for JobId {
    type Err = FqError;

    fn from_str(s: &str) -> Result<JobId, FqError> {
        // Lower-case only: the wire form is canonical, so one job must
        // not be addressable under two spellings.
        let digits = s
            .strip_prefix("job-")
            .filter(|d| {
                d.len() == 16
                    && d.bytes()
                        .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
            })
            .ok_or_else(|| {
                FqError::Serde(format!(
                    "malformed job id `{s}` (expected job-<16 hex digits>)"
                ))
            })?;
        // The shape check above makes this parse infallible, but keep the
        // error path anyway rather than unwrap in a FromStr.
        u64::from_str_radix(digits, 16)
            .map(JobId)
            .map_err(|e| FqError::Serde(format!("malformed job id `{s}`: {e}")))
    }
}

/// A serializable device choice: the workspace's calibrated presets.
///
/// Presets are deterministic per name, so the name *is* the identity —
/// which is also what the cross-job [`TemplateCache`]
/// keys on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeviceSpec {
    /// IBMQ-Montreal (27 qubits, the machine of Figs. 7–11).
    IbmMontreal,
    /// IBMQ-Toronto (27 qubits).
    IbmToronto,
    /// IBMQ-Mumbai (27 qubits).
    IbmMumbai,
    /// IBM-Auckland (27 qubits, the best-calibrated preset).
    IbmAuckland,
    /// IBM-Hanoi (27 qubits).
    IbmHanoi,
    /// IBM-Cairo (27 qubits).
    IbmCairo,
    /// IBMQ-Brooklyn (65 qubits).
    IbmBrooklyn,
    /// IBM-Washington (127 qubits).
    IbmWashington,
    /// The §6 practical-scale 50×50 grid (2500 qubits, optimistic errors).
    Grid2500,
}

impl DeviceSpec {
    /// All presets, in wire-name order of the IBM fleet then the grid.
    pub const ALL: [DeviceSpec; 9] = [
        DeviceSpec::IbmMontreal,
        DeviceSpec::IbmToronto,
        DeviceSpec::IbmMumbai,
        DeviceSpec::IbmAuckland,
        DeviceSpec::IbmHanoi,
        DeviceSpec::IbmCairo,
        DeviceSpec::IbmBrooklyn,
        DeviceSpec::IbmWashington,
        DeviceSpec::Grid2500,
    ];

    /// Builds the calibrated device model.
    #[must_use]
    pub fn build(&self) -> Device {
        match self {
            DeviceSpec::IbmMontreal => Device::ibm_montreal(),
            DeviceSpec::IbmToronto => Device::ibm_toronto(),
            DeviceSpec::IbmMumbai => Device::ibm_mumbai(),
            DeviceSpec::IbmAuckland => Device::ibm_auckland(),
            DeviceSpec::IbmHanoi => Device::ibm_hanoi(),
            DeviceSpec::IbmCairo => Device::ibm_cairo(),
            DeviceSpec::IbmBrooklyn => Device::ibm_brooklyn(),
            DeviceSpec::IbmWashington => Device::ibm_washington(),
            DeviceSpec::Grid2500 => Device::grid_2500(),
        }
    }

    /// The wire name — identical to the built [`Device`]'s name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DeviceSpec::IbmMontreal => "ibmq_montreal",
            DeviceSpec::IbmToronto => "ibmq_toronto",
            DeviceSpec::IbmMumbai => "ibmq_mumbai",
            DeviceSpec::IbmAuckland => "ibm_auckland",
            DeviceSpec::IbmHanoi => "ibm_hanoi",
            DeviceSpec::IbmCairo => "ibm_cairo",
            DeviceSpec::IbmBrooklyn => "ibmq_brooklyn",
            DeviceSpec::IbmWashington => "ibm_washington",
            DeviceSpec::Grid2500 => "grid-50x50",
        }
    }

    /// Looks a preset up by wire name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<DeviceSpec> {
        DeviceSpec::ALL.into_iter().find(|d| d.name() == name)
    }

    /// Maps an already-built device back to its preset, if it is one.
    #[must_use]
    pub fn from_device(device: &Device) -> Option<DeviceSpec> {
        DeviceSpec::from_name(device.name())
    }
}

/// What a job computes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum JobKind {
    /// Standard-QAOA analytic pipeline on the full problem (`m = 0`).
    Baseline,
    /// FrozenQubits analytic pipeline at the configured `m`.
    Frozen,
    /// Baseline and FrozenQubits side by side, with the improvement
    /// factor (the paper's headline comparison).
    Compare,
    /// End-to-end noisy sampling with decoding and the final `min`.
    Sample {
        /// Shots per executed branch.
        shots: u64,
    },
}

/// A validated, serializable job description.
///
/// Build one with [`JobBuilder`]; run it with [`JobSpec::run`] or hand a
/// batch of them to [`BatchRunner`]. The JSON wire format is pinned by
/// the golden tests in `tests/api_serde.rs`.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// The problem Hamiltonian (or a recipe for it).
    pub problem: ProblemSpec,
    /// The target device preset.
    pub device: DeviceSpec,
    /// Pipeline configuration.
    pub config: FrozenQubitsConfig,
    /// Execution backend choice.
    pub backend: BackendSpec,
    /// What to compute.
    pub kind: JobKind,
}

impl JobSpec {
    /// Starts a builder.
    #[must_use]
    pub fn builder() -> JobBuilder {
        JobBuilder::new()
    }

    /// Replaces the execution backend, leaving everything else intact.
    ///
    /// This is the service layer's backend-selection hook: `fq-serve` can
    /// pin every submitted job to an operator-chosen [`BackendSpec`]
    /// without re-validating or rebuilding the spec. Combinations the
    /// builder rejects (sampling on [`BackendSpec::NoiseModel`]) still
    /// fail at run time with the same error.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendSpec) -> JobSpec {
        self.backend = backend;
        self
    }

    /// Resolves the spec into a runnable [`Job`] (materializes the
    /// problem and the device).
    ///
    /// # Errors
    ///
    /// Propagates problem-resolution errors.
    pub fn to_job(&self) -> Result<Job, FqError> {
        Ok(Job {
            model: self.problem.resolve()?,
            device: self.device.build(),
            config: self.config.clone(),
            backend: self.backend,
            kind: self.kind,
        })
    }

    /// Resolves and runs the job.
    ///
    /// # Errors
    ///
    /// Propagates resolution and pipeline errors.
    pub fn run(&self) -> Result<JobResult, FqError> {
        self.to_job()?.run()
    }

    /// The template fingerprints this spec's execution units will look
    /// up — **without compiling anything** (see
    /// [`Job::unit_fingerprints`]).
    ///
    /// # Errors
    ///
    /// Propagates problem-resolution and hotspot-selection errors.
    pub fn unit_fingerprints(&self) -> Result<Vec<String>, FqError> {
        self.to_job()?.unit_fingerprints()
    }

    /// A stable 16-hex-digit fingerprint of this spec's canonical wire
    /// form — the identity a scenario corpus (or any result archive)
    /// keys on. Two specs fingerprint equally iff their
    /// [`JobSpec::to_json`] bytes are equal, and the hash is FNV-1a, so
    /// the value is reproducible across processes, machines and Rust
    /// versions (unlike `DefaultHasher`). Distinct from
    /// [`JobSpec::routing_fingerprint`]: that names the compiled
    /// *template* many specs may share; this names the *spec* itself.
    #[must_use]
    pub fn spec_fingerprint(&self) -> String {
        let mut h = crate::store::Fnv64::new();
        h.write(self.to_json().as_bytes());
        format!("{:016x}", h.finish())
    }

    /// The fingerprint a cluster dispatcher should route this spec by:
    /// the last (most expensive) execution unit's template fingerprint —
    /// the frozen-side template for frozen/compare/sample jobs, the
    /// baseline template for baseline jobs. Jobs that share this
    /// fingerprint reuse one compiled template, so routing them to the
    /// same shard keeps that shard's cache hot.
    ///
    /// Non-exact [`QosTier`]s fold the tier name into the value, so an
    /// `exact` spec keeps exactly its pre-tier fingerprint while
    /// approximate jobs route as a distinct population — result stores
    /// and affinity maps keyed on this value can never mix tiers. The
    /// *template* cache key is deliberately tier-independent (all tiers
    /// share one compiled template; approximation happens after
    /// compilation), so this fold is the only routing-visible change.
    ///
    /// # Errors
    ///
    /// Propagates problem-resolution and hotspot-selection errors.
    pub fn routing_fingerprint(&self) -> Result<String, FqError> {
        let base = self
            .unit_fingerprints()?
            .pop()
            .expect("every job kind decomposes into at least one unit");
        if self.config.tier.is_exact() {
            return Ok(base);
        }
        let mut h = crate::store::Fnv64::new();
        h.write(base.as_bytes());
        h.write(self.config.tier.name().as_bytes());
        Ok(format!("{:016x}", h.finish()))
    }
}

/// Builds a validated [`JobSpec`].
///
/// Problem, device and kind are mandatory; configuration defaults to
/// [`FrozenQubitsConfig::default`] and the backend to [`BackendSpec::Sim`].
/// [`JobBuilder::build`] rejects inconsistent requests — too many frozen
/// qubits, zero layers or shots, multi-layer jobs beyond the statevector
/// width limit — so errors surface before any circuit work starts.
#[derive(Clone, Debug, Default)]
pub struct JobBuilder {
    problem: Option<ProblemSpec>,
    device: Option<DeviceSpec>,
    config: FrozenQubitsConfig,
    backend: BackendSpec,
    kind: Option<JobKind>,
}

impl JobBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> JobBuilder {
        JobBuilder::default()
    }

    /// Sets the problem from any [`ProblemSpec`].
    #[must_use]
    pub fn problem(mut self, problem: ProblemSpec) -> Self {
        self.problem = Some(problem);
        self
    }

    /// Sets an explicit Ising model as the problem.
    #[must_use]
    pub fn ising(self, model: IsingModel) -> Self {
        self.problem(ProblemSpec::Ising(model))
    }

    /// Sets a graph problem with the given weighting.
    #[must_use]
    pub fn graph(
        self,
        num_nodes: usize,
        edges: Vec<(usize, usize)>,
        weighting: GraphWeighting,
    ) -> Self {
        self.problem(ProblemSpec::Graph {
            num_nodes,
            edges,
            weighting,
        })
    }

    /// Sets a Barabási–Albert generator problem.
    #[must_use]
    pub fn barabasi_albert(self, n: usize, d: usize, seed: u64) -> Self {
        self.problem(ProblemSpec::BarabasiAlbert { n, d, seed })
    }

    /// Sets the device preset.
    #[must_use]
    pub fn device(mut self, device: DeviceSpec) -> Self {
        self.device = Some(device);
        self
    }

    /// Replaces the whole pipeline configuration.
    #[must_use]
    pub fn config(mut self, config: FrozenQubitsConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the number of qubits to freeze (`m`).
    #[must_use]
    pub fn num_frozen(mut self, m: usize) -> Self {
        self.config.num_frozen = m;
        self
    }

    /// Sets the QAOA layer count (`p`).
    #[must_use]
    pub fn layers(mut self, p: usize) -> Self {
        self.config.layers = p;
        self
    }

    /// Sets the stochastic seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the branch-execution scheduling backend.
    #[must_use]
    pub fn executor(mut self, executor: crate::ExecutorKind) -> Self {
        self.config.executor = executor;
        self
    }

    /// Sets the accuracy/speed contract ([`QosTier::Exact`] by default).
    ///
    /// Non-exact tiers produce a [`JobResult::Approx`] wrapping the
    /// plain result together with the [`ErrorModel`] describing the
    /// approximation.
    #[must_use]
    pub fn tier(mut self, tier: QosTier) -> Self {
        self.config.tier = tier;
        self
    }

    /// Sets the execution backend.
    #[must_use]
    pub fn backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }

    /// Requests a baseline (standard-QAOA) job.
    #[must_use]
    pub fn baseline(mut self) -> Self {
        self.kind = Some(JobKind::Baseline);
        self
    }

    /// Requests a FrozenQubits job.
    #[must_use]
    pub fn frozen(mut self) -> Self {
        self.kind = Some(JobKind::Frozen);
        self
    }

    /// Requests a baseline-vs-FrozenQubits comparison job.
    #[must_use]
    pub fn compare(mut self) -> Self {
        self.kind = Some(JobKind::Compare);
        self
    }

    /// Requests an end-to-end sampling job with `shots` per branch.
    #[must_use]
    pub fn sample(mut self, shots: u64) -> Self {
        self.kind = Some(JobKind::Sample { shots });
        self
    }

    /// Validates and produces the [`JobSpec`].
    ///
    /// # Errors
    ///
    /// Returns [`FqError::InvalidConfig`] for missing or inconsistent
    /// fields and [`FqError::TooManyFrozen`] when `m` exceeds the problem
    /// width — at build time, not at run time.
    pub fn build(self) -> Result<JobSpec, FqError> {
        let problem = self
            .problem
            .ok_or_else(|| FqError::InvalidConfig("job has no problem".into()))?;
        let device = self
            .device
            .ok_or_else(|| FqError::InvalidConfig("job has no device".into()))?;
        let kind = self.kind.ok_or_else(|| {
            FqError::InvalidConfig("job has no kind (baseline/frozen/compare/sample)".into())
        })?;
        let config = self.config;
        if config.layers == 0 {
            return Err(FqError::InvalidConfig(
                "layers (p) must be at least 1".into(),
            ));
        }
        if config.param_grid == 0 {
            return Err(FqError::InvalidConfig(
                "param_grid must be at least 1".into(),
            ));
        }
        if let JobKind::Sample { shots } = kind {
            if shots == 0 {
                return Err(FqError::InvalidConfig(
                    "sampling jobs need at least 1 shot".into(),
                ));
            }
            if self.backend == BackendSpec::NoiseModel {
                return Err(FqError::InvalidConfig(
                    "the noise_model backend models expectations, not shot distributions; \
                     use the sim backend for sampling jobs"
                        .into(),
                ));
            }
            if !config.tier.is_exact() {
                return Err(FqError::InvalidConfig(
                    "sampling jobs are stochastic end to end and have no approximate \
                     variant; QoS tiers apply to analytic jobs only"
                        .into(),
                ));
            }
        }
        // Width checks read the spec directly; graph/generator problems
        // are additionally materialized once here so malformed edges or
        // infeasible generator parameters fail at build time (an
        // explicit Ising model is already valid and is not cloned).
        if !matches!(problem, ProblemSpec::Ising(_)) {
            problem.resolve()?;
        }
        let num_vars = problem.num_vars();
        if num_vars == 0 {
            return Err(FqError::InvalidConfig("problem has no variables".into()));
        }
        let freezes = !matches!(kind, JobKind::Baseline);
        if freezes && config.num_frozen > num_vars {
            return Err(FqError::TooManyFrozen {
                m: config.num_frozen,
                num_vars,
            });
        }
        if config.layers >= 2 {
            // Multi-layer optimization simulates the exact state; check
            // the widest circuit the job will execute against the same
            // limit the optimizer enforces at run time.
            let limit = crate::pipeline::MAX_EXACT_OPT_QUBITS;
            let executed_width = match kind {
                JobKind::Frozen | JobKind::Sample { .. } => num_vars - config.num_frozen,
                JobKind::Baseline | JobKind::Compare => num_vars,
            };
            if executed_width > limit {
                return Err(FqError::InvalidConfig(format!(
                    "p = {} needs exact simulation; {executed_width} executed qubits exceed the {limit}-qubit limit",
                    config.layers
                )));
            }
        }
        Ok(JobSpec {
            problem,
            device,
            config,
            backend: self.backend,
            kind,
        })
    }
}

/// A resolved, runnable job: materialized problem and device.
///
/// This is the runtime form of a [`JobSpec`]; it also accepts arbitrary
/// (non-preset) [`Device`] models via [`Job::from_parts`], which is what
/// the deprecated free-function wrappers use.
#[derive(Clone, Debug)]
pub struct Job {
    model: IsingModel,
    device: Device,
    config: FrozenQubitsConfig,
    backend: BackendSpec,
    kind: JobKind,
}

impl Job {
    /// A job from already-resolved parts, on the default [`SimBackend`].
    #[must_use]
    pub fn from_parts(
        model: &IsingModel,
        device: &Device,
        config: &FrozenQubitsConfig,
        kind: JobKind,
    ) -> Job {
        Job {
            model: model.clone(),
            device: device.clone(),
            config: config.clone(),
            backend: BackendSpec::Sim,
            kind,
        }
    }

    /// Replaces the execution backend.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendSpec) -> Job {
        self.backend = backend;
        self
    }

    /// Runs the job with a private template cache.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn run(&self) -> Result<JobResult, FqError> {
        self.run_cached(&TemplateCache::new())
    }

    /// Runs the job against a shared [`TemplateCache`] — the building
    /// block of [`BatchRunner`]'s cross-job amortization. The cache is
    /// concurrent, so any number of jobs may run against it at once.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn run_cached(&self, cache: &TemplateCache) -> Result<JobResult, FqError> {
        let backend = self.backend.build(self.config.executor);
        let mut parts = Vec::new();
        for unit in self.decompose() {
            let plan = plan_execution_cached(&self.model, &self.device, &unit.config, cache)?;
            let output = match unit.role {
                UnitRole::Sample { shots } => {
                    UnitOutput::Samples(backend.sample(&plan, &self.device, &unit.config, shots)?)
                }
                UnitRole::Baseline | UnitRole::Frozen => {
                    UnitOutput::Analytic(backend.run(&plan, &self.device, &unit.config)?)
                }
            };
            parts.push((std::sync::Arc::new(plan), output));
        }
        self.assemble(parts)
    }

    /// Splits the job into its execution units — independent
    /// (plan, run) passes over the pipeline. Every kind is one unit
    /// except [`JobKind::Compare`], which is a baseline unit followed by
    /// a frozen unit. Both the sequential [`Job::run_cached`] loop and
    /// [`BatchRunner`]'s flattened jobs×branches pool are built on this
    /// decomposition, which is what makes their results bit-identical.
    pub(crate) fn decompose(&self) -> Vec<JobUnit> {
        let baseline_unit = || JobUnit {
            config: FrozenQubitsConfig {
                num_frozen: 0,
                ..self.config.clone()
            },
            role: UnitRole::Baseline,
        };
        let frozen_unit = |role| JobUnit {
            config: self.config.clone(),
            role,
        };
        match self.kind {
            JobKind::Baseline => vec![baseline_unit()],
            JobKind::Frozen => vec![frozen_unit(UnitRole::Frozen)],
            JobKind::Compare => vec![baseline_unit(), frozen_unit(UnitRole::Frozen)],
            JobKind::Sample { shots } => vec![frozen_unit(UnitRole::Sample { shots })],
        }
    }

    /// The template fingerprints this job's execution units will look up
    /// in a [`TemplateCache`] — computed from the spec alone, **without
    /// compiling anything**.
    ///
    /// For a baseline unit the template shape is the full model's; for a
    /// frozen unit it is the shape of one representative frozen branch
    /// (hotspots selected exactly as planning selects them, all frozen
    /// `UP`) — valid because all `2^m` branches of one job share a single
    /// shape (freezing changes linear terms and the offset, never the
    /// coupling structure). The returned fingerprints are therefore
    /// exactly the keys [`Job::run_cached`] compiles or hits, which is
    /// what lets a dispatcher route jobs onto shards by cache affinity
    /// without doing any circuit work itself.
    ///
    /// # Errors
    ///
    /// Propagates hotspot-selection and freezing errors (e.g. freezing
    /// more qubits than the problem has).
    pub fn unit_fingerprints(&self) -> Result<Vec<String>, FqError> {
        self.decompose()
            .iter()
            .map(|unit| {
                let shape = if unit.config.num_frozen == 0 {
                    ShapeSignature::of(&self.model)
                } else {
                    let hotspots = crate::hotspot::select_hotspots(
                        &self.model,
                        unit.config.num_frozen,
                        &unit.config.hotspots,
                    )?;
                    let assignment: Vec<(usize, fq_ising::Spin)> =
                        hotspots.iter().map(|&q| (q, fq_ising::Spin::UP)).collect();
                    ShapeSignature::of(self.model.freeze(&assignment)?.model())
                };
                Ok(
                    TemplateKey::new(shape, &self.device, unit.config.layers, unit.config.compile)
                        .fingerprint(),
                )
            })
            .collect()
    }

    /// The per-branch noise model this job's backend evaluates — how the
    /// batch engine drives branches without going through the
    /// [`Backend`] object (the two built-in backends differ only here).
    ///
    /// Deliberately exhaustive: a new [`BackendSpec`] variant must not
    /// fall through to the simulator's physics in batches, so adding one
    /// fails to compile here (and in [`Job::sampling_supported`]) until
    /// the batch engine learns how to drive it.
    pub(crate) fn branch_noise(&self) -> crate::NoiseEval {
        match self.backend {
            BackendSpec::Sim => crate::NoiseEval::Lightcone,
            BackendSpec::NoiseModel => crate::NoiseEval::ProcessFidelity,
        }
    }

    /// Whether this job's backend has sampling physics — the batch
    /// engine's counterpart of [`Backend::sample`]'s rejection, kept
    /// exhaustive for the same reason as [`Job::branch_noise`].
    pub(crate) fn sampling_supported(&self) -> bool {
        match self.backend {
            BackendSpec::Sim => true,
            BackendSpec::NoiseModel => false,
        }
    }

    /// Reassembles unit outputs (in [`Job::decompose`] order) into the
    /// job's [`JobResult`] — the single aggregation path shared by the
    /// sequential and the batched engine.
    pub(crate) fn assemble(
        &self,
        parts: Vec<(std::sync::Arc<crate::ExecutionPlan>, UnitOutput)>,
    ) -> Result<JobResult, FqError> {
        let mut parts = parts.into_iter();
        let mut next_analytic =
            |label: String| -> (std::sync::Arc<crate::ExecutionPlan>, RunSummary) {
                let (plan, output) = parts.next().expect("one part per decomposed unit");
                let UnitOutput::Analytic(outcomes) = output else {
                    panic!("analytic unit got sampling output");
                };
                let summary = summarize_outcomes(&plan, &outcomes, label);
                (plan, summary)
            };
        let plain: Result<JobResult, FqError> = match self.kind {
            JobKind::Baseline => Ok(JobResult::Baseline(next_analytic("baseline".into()).1)),
            JobKind::Frozen => {
                let (plan, summary) = next_analytic(format!("FQ(m={})", self.config.num_frozen));
                Ok(JobResult::Frozen {
                    summary,
                    frozen_qubits: plan.frozen_qubits().to_vec(),
                })
            }
            JobKind::Compare => {
                let baseline = next_analytic("baseline".into()).1;
                let (plan, frozen) = next_analytic(format!("FQ(m={})", self.config.num_frozen));
                let improvement = metrics::improvement_factor(baseline.arg, frozen.arg);
                Ok(JobResult::Compare(Report {
                    baseline,
                    frozen,
                    frozen_qubits: plan.frozen_qubits().to_vec(),
                    improvement,
                }))
            }
            JobKind::Sample { .. } => {
                let (plan, output) = parts.next().expect("one part per decomposed unit");
                let UnitOutput::Samples(samples) = output else {
                    panic!("sampling unit got analytic output");
                };
                let mut union = OutputDistribution::new(self.model.num_vars());
                let mut best: Option<(SpinVec, f64)> = None;
                for branch in &samples {
                    consider(&mut best, &self.model, &branch.decoded)?;
                    union.merge(&branch.decoded)?;
                    if let Some(partner) = &branch.partner_decoded {
                        consider(&mut best, &self.model, partner)?;
                        union.merge(partner)?;
                    }
                }
                let (best, energy) = best.ok_or_else(|| {
                    FqError::InvalidConfig("no sub-problem produced any outcome".into())
                })?;
                Ok(JobResult::Sample(SolveOutcome {
                    best,
                    energy,
                    distribution: union,
                    frozen_qubits: plan.frozen_qubits().to_vec(),
                }))
            }
        };
        let plain = plain?;
        Ok(match ErrorModel::for_tier(self.config.tier) {
            Some(error_model) => JobResult::Approx {
                error_model,
                inner: Box::new(plain),
            },
            None => plain,
        })
    }
}

/// One independent (plan, run) pass of a decomposed [`Job`].
pub(crate) struct JobUnit {
    /// The effective pipeline configuration of this unit (`num_frozen`
    /// zeroed for a baseline pass).
    pub(crate) config: FrozenQubitsConfig,
    /// What the unit computes.
    pub(crate) role: UnitRole,
}

/// The role of a [`JobUnit`] within its job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum UnitRole {
    /// Standard-QAOA pass over the full problem.
    Baseline,
    /// FrozenQubits pass at the job's configured `m`.
    Frozen,
    /// End-to-end noisy sampling pass.
    Sample {
        /// Shots per executed branch.
        shots: u64,
    },
}

/// The raw output of one executed [`JobUnit`].
pub(crate) enum UnitOutput {
    /// Branch outcomes of an analytic pass, in branch order.
    Analytic(Vec<crate::BranchOutcome>),
    /// Branch samples of a sampling pass, in branch order.
    Samples(Vec<crate::BranchSamples>),
}

fn consider(
    best: &mut Option<(SpinVec, f64)>,
    model: &IsingModel,
    dist: &OutputDistribution,
) -> Result<(), FqError> {
    let (z, e) = dist.best(model)?;
    if best.as_ref().is_none_or(|(_, be)| e < *be) {
        *best = Some((z, e));
    }
    Ok(())
}

/// The structured accuracy contract attached to every non-exact result.
///
/// The same object drives execution *and* reporting: the executor reads
/// its knob fields to configure the approximate path, then the result
/// carries it verbatim — so what a client is told about the
/// approximation can never drift from what actually ran. The deviation
/// bound is `rel_bound · |ev| + abs_floor` per expectation value
/// ([`ErrorModel::bound_for`]); the suite's tier-deviation tests measure
/// every `core` + `adversarial` scenario against the exact oracle and
/// assert the measurement stays inside this self-reported bound.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorModel {
    /// Which approximate tier produced the result.
    pub tier: QosTier,
    /// Landscape-scan resolution per axis (the coarse pass for
    /// `balanced`, the only pass for `fast`).
    pub scan_resolution: usize,
    /// Resolution of the local refinement pass around the coarse
    /// optimum (`0` = no refinement pass).
    pub refine_resolution: usize,
    /// Nelder–Mead evaluation budget after the scan (`0` = no simplex
    /// polish).
    pub optimizer_evals: usize,
    /// Lightcone truncation depth in gates walked backwards from the
    /// measurement layer; gates beyond it collapse into a global
    /// process-fidelity factor. `0` = pure global attenuation.
    pub lightcone_depth: usize,
    /// Fraction of quadratic terms kept (seeded, deterministic) in the
    /// landscape used to *pick* parameters; the reported expectations
    /// are always evaluated on the full model at the picked point.
    /// `1.0` = no term sampling.
    pub term_sample_keep: f64,
    /// Relative deviation bound on each expectation value.
    pub rel_bound: f64,
    /// Absolute deviation floor, covering expectations near zero.
    pub abs_floor: f64,
}

impl ErrorModel {
    /// The contract of [`QosTier::Balanced`]: coarse-to-fine scan,
    /// early-exit Nelder–Mead, truncated lightcone radius.
    #[must_use]
    pub fn balanced() -> ErrorModel {
        ErrorModel {
            tier: QosTier::Balanced,
            scan_resolution: 11,
            refine_resolution: 7,
            optimizer_evals: 80,
            lightcone_depth: 192,
            term_sample_keep: 1.0,
            rel_bound: 0.05,
            abs_floor: 0.05,
        }
    }

    /// The contract of [`QosTier::Fast`]: one tiny scan on a seeded
    /// term-sampled landscape over polynomial trig, no simplex polish,
    /// a shallow lightcone radius.
    #[must_use]
    pub fn fast() -> ErrorModel {
        ErrorModel {
            tier: QosTier::Fast,
            scan_resolution: 9,
            refine_resolution: 5,
            optimizer_evals: 0,
            lightcone_depth: 192,
            term_sample_keep: 0.25,
            rel_bound: 0.25,
            abs_floor: 0.20,
        }
    }

    /// The error model of a tier; `None` for [`QosTier::Exact`], which
    /// carries no approximation.
    #[must_use]
    pub fn for_tier(tier: QosTier) -> Option<ErrorModel> {
        match tier {
            QosTier::Exact => None,
            QosTier::Balanced => Some(ErrorModel::balanced()),
            QosTier::Fast => Some(ErrorModel::fast()),
        }
    }

    /// The deviation bound this model promises around an exact
    /// expectation value: `rel_bound · |ev| + abs_floor`.
    #[must_use]
    pub fn bound_for(&self, ev: f64) -> f64 {
        self.rel_bound * ev.abs() + self.abs_floor
    }
}

/// The outcome of a job, tagged by [`JobKind`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum JobResult {
    /// A [`JobKind::Baseline`] summary.
    Baseline(RunSummary),
    /// A [`JobKind::Frozen`] summary plus the frozen qubits.
    Frozen {
        /// The aggregated run summary.
        summary: RunSummary,
        /// Which qubits were frozen, in freeze order.
        frozen_qubits: Vec<usize>,
    },
    /// A [`JobKind::Compare`] report.
    Compare(Report),
    /// A [`JobKind::Sample`] outcome.
    Sample(SolveOutcome),
    /// An approximate-tier result: the plain result of the job's kind,
    /// wrapped together with the [`ErrorModel`] contract it was bought
    /// under. The `into_*` extractors see through this wrapper.
    Approx {
        /// The accuracy contract the job ran under.
        error_model: ErrorModel,
        /// The wrapped result (never itself `Approx`).
        inner: Box<JobResult>,
    },
}

impl JobResult {
    /// Extracts a baseline summary.
    ///
    /// # Errors
    ///
    /// Returns [`FqError::InvalidConfig`] when the result is of a
    /// different kind.
    pub fn into_baseline(self) -> Result<RunSummary, FqError> {
        match self {
            JobResult::Baseline(summary) => Ok(summary),
            JobResult::Approx { inner, .. } => inner.into_baseline(),
            other => Err(wrong_kind("baseline", &other)),
        }
    }

    /// Extracts a frozen summary and its frozen qubits.
    ///
    /// # Errors
    ///
    /// Returns [`FqError::InvalidConfig`] when the result is of a
    /// different kind.
    pub fn into_frozen(self) -> Result<(RunSummary, Vec<usize>), FqError> {
        match self {
            JobResult::Frozen {
                summary,
                frozen_qubits,
            } => Ok((summary, frozen_qubits)),
            JobResult::Approx { inner, .. } => inner.into_frozen(),
            other => Err(wrong_kind("frozen", &other)),
        }
    }

    /// Extracts a comparison report.
    ///
    /// # Errors
    ///
    /// Returns [`FqError::InvalidConfig`] when the result is of a
    /// different kind.
    pub fn into_compare(self) -> Result<Report, FqError> {
        match self {
            JobResult::Compare(report) => Ok(report),
            JobResult::Approx { inner, .. } => inner.into_compare(),
            other => Err(wrong_kind("compare", &other)),
        }
    }

    /// Extracts a sampling outcome.
    ///
    /// # Errors
    ///
    /// Returns [`FqError::InvalidConfig`] when the result is of a
    /// different kind.
    pub fn into_sample(self) -> Result<SolveOutcome, FqError> {
        match self {
            JobResult::Sample(outcome) => Ok(outcome),
            JobResult::Approx { inner, .. } => inner.into_sample(),
            other => Err(wrong_kind("sample", &other)),
        }
    }

    /// The [`ErrorModel`] of an approximate-tier result; `None` for
    /// exact results.
    #[must_use]
    pub fn error_model(&self) -> Option<&ErrorModel> {
        match self {
            JobResult::Approx { error_model, .. } => Some(error_model),
            _ => None,
        }
    }

    /// The wire tag of this result's kind. `Approx` wrappers report the
    /// *inner* kind — the wrapper is tagged by the wire version and the
    /// presence of `error_model`, not by a kind of its own at this
    /// level.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            JobResult::Baseline(_) => "baseline",
            JobResult::Frozen { .. } => "frozen",
            JobResult::Compare(_) => "compare",
            JobResult::Sample(_) => "sample",
            JobResult::Approx { inner, .. } => inner.kind_name(),
        }
    }
}

fn wrong_kind(wanted: &str, got: &JobResult) -> FqError {
    FqError::InvalidConfig(format!(
        "job result is `{}`, not `{wanted}`",
        got.kind_name()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_graphs::{gen, to_ising_pm1};

    fn ba_model(n: usize, seed: u64) -> IsingModel {
        to_ising_pm1(&gen::barabasi_albert(n, 1, seed).unwrap(), seed)
    }

    #[test]
    fn builder_requires_problem_device_and_kind() {
        let missing_problem = JobBuilder::new().device(DeviceSpec::IbmMontreal).compare();
        assert!(matches!(
            missing_problem.build(),
            Err(FqError::InvalidConfig(msg)) if msg.contains("problem")
        ));
        let missing_device = JobBuilder::new().barabasi_albert(8, 1, 1).compare();
        assert!(matches!(
            missing_device.build(),
            Err(FqError::InvalidConfig(msg)) if msg.contains("device")
        ));
        let missing_kind = JobBuilder::new()
            .barabasi_albert(8, 1, 1)
            .device(DeviceSpec::IbmMontreal);
        assert!(matches!(
            missing_kind.build(),
            Err(FqError::InvalidConfig(msg)) if msg.contains("kind")
        ));
    }

    #[test]
    fn unit_fingerprints_name_exactly_what_planning_compiles() {
        // One spec per job kind, over two problem families and two
        // freeze depths: the no-compile fingerprint prediction must
        // match, as a set, the fingerprints the template cache actually
        // compiled after running the spec.
        let base = |n: usize, seed: u64| {
            JobBuilder::new()
                .barabasi_albert(n, 1, seed)
                .device(DeviceSpec::IbmMontreal)
        };
        let specs = vec![
            base(10, 4).baseline().build().unwrap(),
            base(10, 4).num_frozen(1).frozen().build().unwrap(),
            base(10, 4).num_frozen(2).frozen().build().unwrap(),
            base(12, 7).compare().build().unwrap(),
            base(8, 2).sample(16).build().unwrap(),
        ];
        for spec in &specs {
            let runner = BatchRunner::new();
            runner
                .run(std::slice::from_ref(spec))
                .pop()
                .unwrap()
                .unwrap();
            let compiled: std::collections::BTreeSet<String> = runner
                .cache()
                .index()
                .into_iter()
                .map(|entry| entry.fingerprint)
                .collect();
            let predicted: std::collections::BTreeSet<String> =
                spec.unit_fingerprints().unwrap().into_iter().collect();
            assert_eq!(
                predicted, compiled,
                "predicted fingerprints must equal the compiled keys for {spec:?}"
            );
            for fingerprint in &predicted {
                assert!(crate::is_template_fingerprint(fingerprint));
            }
        }

        // The routing fingerprint is the frozen-side unit for compare
        // jobs (the last decomposed unit) and is stable across calls.
        let compare = base(12, 7).compare().build().unwrap();
        let units = compare.unit_fingerprints().unwrap();
        assert_eq!(units.len(), 2, "compare = baseline unit + frozen unit");
        assert_eq!(
            compare.routing_fingerprint().unwrap(),
            units[1],
            "compare jobs route by their frozen-side template"
        );
        assert_eq!(
            compare.routing_fingerprint().unwrap(),
            compare.routing_fingerprint().unwrap()
        );

        // Errors surface instead of panicking: freezing more qubits than
        // the problem has is a routing-time error too.
        let smuggled = JobSpec {
            config: FrozenQubitsConfig::with_frozen(99),
            ..base(8, 1).frozen().build().unwrap()
        };
        assert!(matches!(
            smuggled.routing_fingerprint(),
            Err(FqError::TooManyFrozen { .. })
        ));
    }

    #[test]
    fn spec_fingerprints_are_stable_and_follow_the_wire_form() {
        let base = || {
            JobBuilder::new()
                .barabasi_albert(10, 1, 4)
                .device(DeviceSpec::IbmMontreal)
                .frozen()
        };
        let spec = base().build().unwrap();
        assert_eq!(spec.spec_fingerprint(), spec.spec_fingerprint());
        assert!(
            crate::is_template_fingerprint(&spec.spec_fingerprint()),
            "16 lower-hex digits, same shape as template fingerprints"
        );
        // Equal wire bytes ⇒ equal fingerprints; any wire-visible field
        // change ⇒ a different fingerprint.
        let same = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(same.spec_fingerprint(), spec.spec_fingerprint());
        let other_seed = base().seed(1).build().unwrap();
        assert_ne!(other_seed.spec_fingerprint(), spec.spec_fingerprint());
        // The algorithm is pinned (FNV-1a over the canonical JSON), so
        // the value itself is part of the corpus contract: a silent
        // hasher change would orphan every recorded suite result.
        let mut h = crate::store::Fnv64::new();
        h.write(spec.to_json().as_bytes());
        assert_eq!(spec.spec_fingerprint(), format!("{:016x}", h.finish()));
    }

    #[test]
    fn builder_validates_at_build_time() {
        let base = || {
            JobBuilder::new()
                .barabasi_albert(8, 1, 1)
                .device(DeviceSpec::IbmMontreal)
        };
        assert!(matches!(
            base().frozen().num_frozen(9).build(),
            Err(FqError::TooManyFrozen { m: 9, num_vars: 8 })
        ));
        assert!(matches!(
            base().frozen().layers(0).build(),
            Err(FqError::InvalidConfig(_))
        ));
        assert!(matches!(
            base().sample(0).build(),
            Err(FqError::InvalidConfig(_))
        ));
        // The noise-model backend has no sampling physics.
        assert!(matches!(
            base().backend(BackendSpec::NoiseModel).sample(64).build(),
            Err(FqError::InvalidConfig(msg)) if msg.contains("noise_model")
        ));
        // m = 9 on a baseline job is fine: the baseline never freezes.
        assert!(base().baseline().num_frozen(9).build().is_ok());
        // p = 2 on a 24-variable problem exceeds the statevector limit...
        let wide = JobBuilder::new()
            .barabasi_albert(24, 1, 2)
            .device(DeviceSpec::IbmMontreal)
            .layers(2);
        assert!(matches!(
            wide.clone().compare().build(),
            Err(FqError::InvalidConfig(msg)) if msg.contains("20-qubit")
        ));
        // ...unless freezing brings the executed width under it.
        assert!(wide.frozen().num_frozen(6).build().is_ok());
    }

    #[test]
    fn problem_specs_resolve_deterministically() {
        let a = ProblemSpec::BarabasiAlbert {
            n: 10,
            d: 1,
            seed: 3,
        }
        .resolve()
        .unwrap();
        let b = ProblemSpec::BarabasiAlbert {
            n: 10,
            d: 1,
            seed: 3,
        }
        .resolve()
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a, ba_model(10, 3));

        let ring = ProblemSpec::Graph {
            num_nodes: 4,
            edges: vec![(0, 1), (1, 2), (2, 3), (3, 0)],
            weighting: GraphWeighting::Unit,
        };
        let m = ring.resolve().unwrap();
        assert_eq!(m.num_couplings(), 4);
        assert!(m.couplings().all(|(_, j)| j == 1.0));

        let bad = ProblemSpec::Graph {
            num_nodes: 3,
            edges: vec![(0, 7)],
            weighting: GraphWeighting::Unit,
        };
        assert!(matches!(bad.resolve(), Err(FqError::Graph(_))));
    }

    #[test]
    fn job_ids_round_trip_and_reject_garbage() {
        for value in [0u64, 42, u64::MAX] {
            let id = JobId::new(value);
            assert_eq!(id.value(), value);
            assert_eq!(id.to_string().parse::<JobId>(), Ok(id));
        }
        assert_eq!(JobId::new(42).to_string(), "job-000000000000002a");
        for garbage in [
            "",
            "job-",
            "job-42",
            "42",
            "job-000000000000002g",
            "job-000000000000002a7",
            "JOB-000000000000002a",
            "job-000000000000002A",
        ] {
            assert!(
                garbage.parse::<JobId>().is_err(),
                "`{garbage}` must be rejected"
            );
        }
    }

    #[test]
    fn with_backend_swaps_only_the_backend() {
        let spec = JobBuilder::new()
            .barabasi_albert(8, 1, 1)
            .device(DeviceSpec::IbmMontreal)
            .frozen()
            .build()
            .unwrap();
        let swapped = spec.clone().with_backend(BackendSpec::NoiseModel);
        assert_eq!(swapped.backend, BackendSpec::NoiseModel);
        assert_eq!(
            JobSpec {
                backend: spec.backend,
                ..swapped
            },
            spec
        );
    }

    #[test]
    fn device_specs_round_trip_names() {
        for spec in DeviceSpec::ALL {
            assert_eq!(spec.build().name(), spec.name());
            assert_eq!(DeviceSpec::from_name(spec.name()), Some(spec));
            assert_eq!(DeviceSpec::from_device(&spec.build()), Some(spec));
        }
        assert_eq!(DeviceSpec::from_name("ibm_atlantis"), None);
    }

    #[test]
    fn job_results_are_typed() {
        let spec = JobBuilder::new()
            .barabasi_albert(8, 1, 5)
            .device(DeviceSpec::IbmMontreal)
            .baseline()
            .build()
            .unwrap();
        let result = spec.run().unwrap();
        assert_eq!(result.kind_name(), "baseline");
        assert!(result.clone().into_compare().is_err());
        let summary = result.into_baseline().unwrap();
        assert_eq!(summary.label, "baseline");
        assert_eq!(summary.circuit_qubits, 8);
    }

    #[test]
    fn compare_job_matches_the_free_functions() {
        let model = ba_model(12, 3);
        let device = Device::ibm_montreal();
        let config = FrozenQubitsConfig::default();
        let via_job = Job::from_parts(&model, &device, &config, JobKind::Compare)
            .run()
            .unwrap()
            .into_compare()
            .unwrap();
        #[allow(deprecated)]
        let via_free = crate::compare(&model, &device, &config).unwrap();
        assert_eq!(via_job, via_free);
    }

    #[test]
    fn noise_model_backend_is_deterministic_and_distinct() {
        let spec = JobBuilder::new()
            .barabasi_albert(10, 1, 4)
            .device(DeviceSpec::IbmMontreal)
            .backend(BackendSpec::NoiseModel)
            .frozen()
            .build()
            .unwrap();
        let a = spec.run().unwrap().into_frozen().unwrap();
        let b = spec.run().unwrap().into_frozen().unwrap();
        assert_eq!(a, b, "NoiseModelBackend must be deterministic");

        let sim = JobSpec {
            backend: BackendSpec::Sim,
            ..spec
        };
        let s = sim.run().unwrap().into_frozen().unwrap();
        // Same ideal physics, different noise model.
        assert_eq!(a.0.ev_ideal, s.0.ev_ideal);
        assert_ne!(a.0.ev_noisy, s.0.ev_noisy);
    }

    #[test]
    fn tier_reaches_the_config_and_sampling_rejects_non_exact() {
        let spec = JobBuilder::new()
            .barabasi_albert(8, 1, 1)
            .device(DeviceSpec::IbmMontreal)
            .frozen()
            .tier(QosTier::Fast)
            .build()
            .unwrap();
        assert_eq!(spec.config.tier, QosTier::Fast);

        // Sampling is stochastic end to end; there is no approximate
        // variant of it to promise a bound for.
        let rejected = JobBuilder::new()
            .barabasi_albert(8, 1, 1)
            .device(DeviceSpec::IbmMontreal)
            .sample(16)
            .tier(QosTier::Balanced)
            .build();
        assert!(matches!(rejected, Err(FqError::InvalidConfig(_))));

        // Spelling out the default is not a violation.
        JobBuilder::new()
            .barabasi_albert(8, 1, 1)
            .device(DeviceSpec::IbmMontreal)
            .sample(16)
            .tier(QosTier::Exact)
            .build()
            .unwrap();
    }

    #[test]
    fn routing_fingerprints_separate_tiers_but_not_templates() {
        let with_tier = |tier: QosTier| {
            JobBuilder::new()
                .barabasi_albert(12, 1, 7)
                .device(DeviceSpec::IbmMontreal)
                .frozen()
                .tier(tier)
                .build()
                .unwrap()
        };
        let exact = with_tier(QosTier::Exact);
        let balanced = with_tier(QosTier::Balanced);
        let fast = with_tier(QosTier::Fast);

        // Exact routing is unchanged by the tier plumbing: the fold
        // only engages for non-exact tiers.
        let plain = JobBuilder::new()
            .barabasi_albert(12, 1, 7)
            .device(DeviceSpec::IbmMontreal)
            .frozen()
            .build()
            .unwrap();
        let exact_fp = exact.routing_fingerprint().unwrap();
        assert_eq!(exact_fp, plain.routing_fingerprint().unwrap());

        // Each non-exact tier routes to its own affinity bucket so
        // approximate results can never poison an exact cache line.
        let balanced_fp = balanced.routing_fingerprint().unwrap();
        let fast_fp = fast.routing_fingerprint().unwrap();
        assert_ne!(exact_fp, balanced_fp);
        assert_ne!(exact_fp, fast_fp);
        assert_ne!(balanced_fp, fast_fp);

        // Tiers share compiled templates: the unit fingerprints the
        // planner would compile are tier-independent.
        assert_eq!(
            exact.unit_fingerprints().unwrap(),
            fast.unit_fingerprints().unwrap()
        );
    }

    #[test]
    fn approximate_results_are_deterministic() {
        for tier in [QosTier::Balanced, QosTier::Fast] {
            let spec = JobBuilder::new()
                .barabasi_albert(14, 1, 9)
                .device(DeviceSpec::IbmMontreal)
                .num_frozen(2)
                .frozen()
                .tier(tier)
                .build()
                .unwrap();
            let a = spec.run().unwrap();
            let b = spec.run().unwrap();
            assert_eq!(a.to_json(), b.to_json(), "{tier:?} is a contract");
        }
    }
}
