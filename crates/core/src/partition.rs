//! Partitioning a problem into sub-problems with symmetry pruning
//! (§3.3 + §3.7.2).

use fq_ising::symmetry::{partner_mask, representative_masks};
use fq_ising::{FrozenProblem, IsingModel, Spin};
use serde::{Deserialize, Serialize};

use crate::FqError;

/// One sub-problem scheduled for execution, together with its pruned
/// symmetric partner (if any).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SubproblemExec {
    /// The frozen sub-problem to actually run.
    pub problem: FrozenProblem,
    /// The branch bitmask (bit `t` set ⇒ frozen qubit `t` is `−1`).
    pub mask: u64,
    /// The bitmask of the symmetric partner this execution also covers
    /// (its outcomes are the bit-flips of this one's). `None` when the
    /// parent is not symmetric or `m = 0`.
    pub partner_mask: Option<u64>,
}

/// The full execution plan for freezing a set of qubits.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Sub-problems to execute.
    pub executed: Vec<SubproblemExec>,
    /// The frozen qubit indices, in freeze order.
    pub frozen_qubits: Vec<usize>,
    /// Whether symmetry pruning halved the execution set.
    pub pruned: bool,
}

impl Partition {
    /// Total number of sub-spaces the state space was divided into
    /// (`2^m`), counting pruned partners.
    #[must_use]
    pub fn total_subspaces(&self) -> u64 {
        1u64 << self.frozen_qubits.len()
    }

    /// Number of circuits actually executed (the paper's *quantum cost*;
    /// `2^{m−1}` under pruning).
    #[must_use]
    pub fn quantum_cost(&self) -> u64 {
        self.executed.len() as u64
    }
}

/// Builds the execution plan for freezing `qubits` of `model`.
///
/// When the parent model is spin-flip symmetric (all `h_i = 0`, §3.7.2) and
/// `prune` is set, only the `2^{m−1}` branches whose first frozen spin is
/// `+1` are scheduled; each covers its all-spins-negated partner, whose
/// output distribution is recovered by flipping every bit.
///
/// # Errors
///
/// Propagates freezing errors (bad indices, duplicates).
///
/// # Example
///
/// ```
/// use fq_ising::IsingModel;
/// use frozenqubits::partition_problem;
///
/// let mut m = IsingModel::new(4);
/// m.set_coupling(0, 1, 1.0)?;
/// m.set_coupling(0, 2, 1.0)?;
/// m.set_coupling(0, 3, -1.0)?;
///
/// // Freezing 2 qubits of a symmetric model: 4 sub-spaces, 2 executions.
/// let plan = partition_problem(&m, &[0, 1], true)?;
/// assert_eq!(plan.total_subspaces(), 4);
/// assert_eq!(plan.quantum_cost(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn partition_problem(
    model: &IsingModel,
    qubits: &[usize],
    prune: bool,
) -> Result<Partition, FqError> {
    let m = qubits.len();
    let symmetric = model.has_zero_linear_terms();
    let use_pruning = prune && symmetric && m >= 1;

    let masks: Vec<u64> = if use_pruning {
        representative_masks(m)
    } else {
        (0..(1u64 << m)).collect()
    };

    let mut executed = Vec::with_capacity(masks.len());
    for mask in masks {
        let assignment: Vec<(usize, Spin)> = qubits
            .iter()
            .enumerate()
            .map(|(t, &q)| {
                let s = if (mask >> t) & 1 == 0 {
                    Spin::UP
                } else {
                    Spin::DOWN
                };
                (q, s)
            })
            .collect();
        let problem = model.freeze(&assignment)?;
        executed.push(SubproblemExec {
            problem,
            mask,
            partner_mask: use_pruning.then(|| partner_mask(mask, m)),
        });
    }
    Ok(Partition {
        executed,
        frozen_qubits: qubits.to_vec(),
        pruned: use_pruning,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_ising::SpinVec;

    fn symmetric_model() -> IsingModel {
        let mut m = IsingModel::new(5);
        m.set_coupling(0, 1, 1.0).unwrap();
        m.set_coupling(0, 2, -1.0).unwrap();
        m.set_coupling(0, 3, 1.0).unwrap();
        m.set_coupling(3, 4, 1.0).unwrap();
        m
    }

    #[test]
    fn pruning_halves_executions() {
        let m = symmetric_model();
        for k in 1..=3usize {
            let qubits: Vec<usize> = (0..k).collect();
            let plan = partition_problem(&m, &qubits, true).unwrap();
            assert_eq!(plan.quantum_cost(), 1 << (k - 1));
            assert_eq!(plan.total_subspaces(), 1 << k);
            assert!(plan.pruned);
        }
    }

    #[test]
    fn no_pruning_without_symmetry() {
        let mut m = symmetric_model();
        m.set_linear(4, 0.5).unwrap();
        let plan = partition_problem(&m, &[0, 1], true).unwrap();
        assert_eq!(plan.quantum_cost(), 4);
        assert!(!plan.pruned);
        assert!(plan.executed.iter().all(|e| e.partner_mask.is_none()));
    }

    #[test]
    fn m_zero_runs_the_original_problem() {
        let m = symmetric_model();
        let plan = partition_problem(&m, &[], true).unwrap();
        assert_eq!(plan.quantum_cost(), 1);
        assert_eq!(plan.executed[0].problem.model(), &m);
    }

    #[test]
    fn executed_plus_partners_cover_every_subspace() {
        let m = symmetric_model();
        let plan = partition_problem(&m, &[0, 3], true).unwrap();
        let mut covered = std::collections::BTreeSet::new();
        for e in &plan.executed {
            covered.insert(e.mask);
            if let Some(p) = e.partner_mask {
                covered.insert(p);
            }
        }
        assert_eq!(covered.len(), 4);
    }

    #[test]
    fn partner_energies_mirror_exactly() {
        // The energy of any point in an executed branch equals the energy
        // of its bit-flip in the partner branch.
        let m = symmetric_model();
        let plan = partition_problem(&m, &[0], true).unwrap();
        let exec = &plan.executed[0];
        assert_eq!(exec.partner_mask, Some(1));
        let partner = partition_problem(&m, &[0], false)
            .unwrap()
            .executed
            .into_iter()
            .find(|e| e.mask == 1)
            .unwrap();
        for idx in 0..16u64 {
            let y = SpinVec::from_index(idx, 4);
            let e_exec = exec.problem.model().energy(&y).unwrap();
            let e_partner = partner.problem.model().energy(&y.flipped()).unwrap();
            assert!((e_exec - e_partner).abs() < 1e-12);
        }
    }
}
