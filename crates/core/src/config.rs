//! Pipeline configuration.

use fq_transpile::CompileOptions;
use serde::{Deserialize, Serialize};

use crate::{Executor, ExecutorKind, HotspotStrategy};

/// The per-job accuracy/speed contract.
///
/// `Exact` is the bit-identical reference path and the default; the
/// approximate tiers trade a bounded amount of accuracy for
/// throughput, and every non-exact [`JobResult`](crate::api::JobResult)
/// carries an [`ErrorModel`](crate::api::ErrorModel) describing exactly
/// what was traded. Approximate tiers are still deterministic per
/// `(spec, seed)`: same spec + same seed ⇒ byte-identical results
/// across processes and thread counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QosTier {
    /// Today's bit-identical path (full-resolution landscape scan,
    /// full Nelder–Mead, exact trig, full lightcone walk).
    #[default]
    Exact,
    /// Coarse-to-fine landscape scan with local refinement, early-exit
    /// Nelder–Mead, truncated lightcone radius.
    Balanced,
    /// Seeded term-sampled landscape over a polynomial `sin`/`cos`
    /// fast-math path, no simplex polish, depth-0 lightcone.
    Fast,
}

impl QosTier {
    /// The wire tag (`"exact"` / `"balanced"` / `"fast"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QosTier::Exact => "exact",
            QosTier::Balanced => "balanced",
            QosTier::Fast => "fast",
        }
    }

    /// Parses a wire tag; `None` for unknown names.
    #[must_use]
    pub fn from_name(name: &str) -> Option<QosTier> {
        match name {
            "exact" => Some(QosTier::Exact),
            "balanced" => Some(QosTier::Balanced),
            "fast" => Some(QosTier::Fast),
            _ => None,
        }
    }

    /// Whether this is the bit-identical reference tier.
    #[must_use]
    pub fn is_exact(self) -> bool {
        self == QosTier::Exact
    }

    /// All tiers, in contract order (exact → balanced → fast).
    pub const ALL: [QosTier; 3] = [QosTier::Exact, QosTier::Balanced, QosTier::Fast];
}

/// Configuration of the FrozenQubits pipeline.
///
/// The defaults follow the paper: freeze up to `m = 1` hotspot by maximum
/// degree, single-layer QAOA (`p = 1`, as in the hardware evaluation),
/// symmetry pruning on, level-3-style compilation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FrozenQubitsConfig {
    /// Number of qubits to freeze (`m`). The paper's default design uses
    /// 1–2; its scaling study goes to 10.
    pub num_frozen: usize,
    /// QAOA layers (`p`).
    pub layers: usize,
    /// Hotspot selection policy.
    pub hotspots: HotspotStrategy,
    /// Skip symmetric partner sub-problems (§3.7.2). Only effective when
    /// the parent model has all-zero linear coefficients.
    pub prune_symmetric: bool,
    /// Transpiler options.
    pub compile: CompileOptions,
    /// Resolution of the coarse `(γ, β)` grid that seeds the parameter
    /// optimizer.
    pub param_grid: usize,
    /// Seed for any stochastic component.
    pub seed: u64,
    /// How branches are scheduled (sequential, or fanned out across
    /// threads). All kinds produce bit-identical results; parallel is
    /// the default. Orthogonal to the job-level
    /// [`BackendSpec`](crate::api::BackendSpec), which picks the physics.
    pub executor: ExecutorKind,
    /// The accuracy/speed contract. `Exact` (default) keeps the
    /// bit-identical path; approximate tiers are described by the
    /// [`ErrorModel`](crate::api::ErrorModel) their results carry.
    pub tier: QosTier,
}

impl Default for FrozenQubitsConfig {
    fn default() -> Self {
        FrozenQubitsConfig {
            num_frozen: 1,
            layers: 1,
            hotspots: HotspotStrategy::MaxDegree,
            prune_symmetric: true,
            compile: CompileOptions::level3(),
            param_grid: 15,
            seed: 0,
            executor: ExecutorKind::default(),
            tier: QosTier::Exact,
        }
    }
}

impl FrozenQubitsConfig {
    /// A configuration freezing `m` qubits, other fields default.
    #[must_use]
    pub fn with_frozen(m: usize) -> FrozenQubitsConfig {
        FrozenQubitsConfig {
            num_frozen: m,
            ..FrozenQubitsConfig::default()
        }
    }

    /// Builds the branch-*scheduling* executor this configuration
    /// selects. The execution substrate (simulator, noise model, a
    /// future real device) is the separate per-job
    /// [`BackendSpec`](crate::api::BackendSpec) choice, which wraps this
    /// executor.
    #[must_use]
    pub fn build_executor(&self) -> Box<dyn Executor + Send + Sync> {
        self.executor.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = FrozenQubitsConfig::default();
        assert_eq!(c.num_frozen, 1);
        assert_eq!(c.layers, 1);
        assert!(c.prune_symmetric);
        assert_eq!(c.hotspots, HotspotStrategy::MaxDegree);
    }

    #[test]
    fn with_frozen_sets_m() {
        assert_eq!(FrozenQubitsConfig::with_frozen(3).num_frozen, 3);
    }
}
