//! The end-to-end workflow runtime model of §6.5 (Eq. 6):
//!
//! ```text
//! T = δ_compile + I · N_batch · (τ · t_NISQ + Δ_cloud) + δ_opt + δ_pp
//! ```
//!
//! evaluated under four execution models (sequential/batched ×
//! shared/dedicated), reproducing Fig. 18.

use serde::{Deserialize, Serialize};

/// How circuits reach the device.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExecutionModel {
    /// Maximum circuits per cloud job (`None` = one circuit per job, as on
    /// sequential providers; `Some(900)` on IBMQ-style batching).
    pub batch_size: Option<usize>,
    /// Cloud access latency per job in seconds (30 min shared, 0
    /// dedicated).
    pub cloud_latency_s: f64,
    /// Display name for tables.
    pub name: &'static str,
}

impl ExecutionModel {
    /// Sequential submission on a shared device (the paper's "Azure"
    /// column).
    #[must_use]
    pub fn sequential_shared() -> ExecutionModel {
        ExecutionModel {
            batch_size: None,
            cloud_latency_s: 30.0 * 60.0,
            name: "Sequential+Shared",
        }
    }

    /// Sequential submission on a dedicated device ("Amazon").
    #[must_use]
    pub fn sequential_dedicated() -> ExecutionModel {
        ExecutionModel {
            batch_size: None,
            cloud_latency_s: 0.0,
            name: "Sequential+Dedicated",
        }
    }

    /// Batched submission (up to 900 circuits/job) on a shared device
    /// ("IBMQ shared").
    #[must_use]
    pub fn batched_shared() -> ExecutionModel {
        ExecutionModel {
            batch_size: Some(900),
            cloud_latency_s: 30.0 * 60.0,
            name: "Batched+Shared",
        }
    }

    /// Batched submission on a dedicated device ("IBMQ dedicated").
    #[must_use]
    pub fn batched_dedicated() -> ExecutionModel {
        ExecutionModel {
            batch_size: Some(900),
            cloud_latency_s: 0.0,
            name: "Batched+Dedicated",
        }
    }

    /// The four models of Fig. 18, in the paper's order.
    #[must_use]
    pub fn all() -> Vec<ExecutionModel> {
        vec![
            ExecutionModel::sequential_shared(),
            ExecutionModel::sequential_dedicated(),
            ExecutionModel::batched_shared(),
            ExecutionModel::batched_dedicated(),
        ]
    }
}

/// Workload parameters of Eq. 6 (the paper's §6.5 defaults via
/// [`Default`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RuntimeParams {
    /// QAOA iterations `I`.
    pub iterations: u64,
    /// Trials per circuit per iteration `τ`.
    pub trials: u64,
    /// Seconds per trial `t_NISQ`.
    pub t_nisq_s: f64,
    /// Classical optimizer latency per iteration `Δ_opt` (seconds).
    pub opt_latency_s: f64,
    /// One-off compilation latency `δ_compile` (seconds).
    pub compile_s: f64,
    /// Post-processing time `δ_pp` (seconds).
    pub postprocess_s: f64,
}

impl Default for RuntimeParams {
    fn default() -> Self {
        RuntimeParams {
            iterations: 1_000,
            trials: 25_000,
            t_nisq_s: 1e-3,
            opt_latency_s: 60.0,
            compile_s: 2.0 * 3_600.0,
            postprocess_s: 60.0,
        }
    }
}

/// Evaluates Eq. 6 for a scheme that must run `num_circuits` circuits per
/// iteration (1 for the baseline, `2^{m−1}` for pruned FrozenQubits).
/// Returns hours.
///
/// # Example
///
/// ```
/// use frozenqubits::runtime::{end_to_end_runtime_hours, ExecutionModel, RuntimeParams};
///
/// let params = RuntimeParams::default();
/// // Default FrozenQubits (m = 2, pruned to 2 circuits) under batching is
/// // nearly free: the cloud latency is paid once per batch either way.
/// let baseline = end_to_end_runtime_hours(1, &params, &ExecutionModel::batched_shared());
/// let fq2 = end_to_end_runtime_hours(2, &params, &ExecutionModel::batched_shared());
/// assert!(fq2 / baseline < 1.05);
/// // Without batching, every extra circuit pays the cloud latency again.
/// let fq2_seq = end_to_end_runtime_hours(2, &params, &ExecutionModel::sequential_shared());
/// assert!(fq2_seq > 1.5 * end_to_end_runtime_hours(1, &params, &ExecutionModel::sequential_shared()));
/// ```
#[must_use]
pub fn end_to_end_runtime_hours(
    num_circuits: u64,
    params: &RuntimeParams,
    exec: &ExecutionModel,
) -> f64 {
    let batches = match exec.batch_size {
        Some(b) => num_circuits.div_ceil(b as u64),
        None => num_circuits,
    };
    // Within a batch the circuits run back-to-back on the device; cloud
    // latency is paid once per batch.
    let circuits_per_batch = num_circuits as f64 / batches as f64;
    let device_time_per_batch = circuits_per_batch * params.trials as f64 * params.t_nisq_s;
    let per_iteration = batches as f64 * (device_time_per_batch + exec.cloud_latency_s);
    let total_s = params.compile_s
        + params.iterations as f64 * (per_iteration + params.opt_latency_s)
        + params.postprocess_s;
    total_s / 3_600.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_access_dominates_sequential_runtime() {
        let p = RuntimeParams::default();
        let shared = end_to_end_runtime_hours(1, &p, &ExecutionModel::sequential_shared());
        let dedicated = end_to_end_runtime_hours(1, &p, &ExecutionModel::sequential_dedicated());
        assert!(shared > 10.0 * dedicated);
    }

    #[test]
    fn batching_absorbs_subcircuits() {
        let p = RuntimeParams::default();
        for exec in [
            ExecutionModel::batched_shared(),
            ExecutionModel::batched_dedicated(),
        ] {
            let base = end_to_end_runtime_hours(1, &p, &exec);
            let fq = end_to_end_runtime_hours(512, &p, &exec);
            assert!(fq < 600.0 * base, "batched run must not scale linearly");
            // Everything fits one batch: device time grows, latency does not.
            assert!(fq > base);
        }
    }

    #[test]
    fn sequential_scales_linearly_in_circuits() {
        let p = RuntimeParams::default();
        let exec = ExecutionModel::sequential_dedicated();
        let one = end_to_end_runtime_hours(1, &p, &exec);
        let two = end_to_end_runtime_hours(2, &p, &exec);
        // Subtract the fixed compile/opt/pp overheads before comparing.
        let fixed =
            (p.compile_s + p.postprocess_s + p.iterations as f64 * p.opt_latency_s) / 3600.0;
        assert!(((two - fixed) / (one - fixed) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fig18_ordering_holds() {
        // Baseline ordering of the four bars for FQ(m=2): shared sequential
        // slowest, batched dedicated fastest.
        let p = RuntimeParams::default();
        let t: Vec<f64> = ExecutionModel::all()
            .iter()
            .map(|e| end_to_end_runtime_hours(2, &p, e))
            .collect();
        assert!(t[0] > t[1] && t[0] > t[3]);
        assert!(t[2] > t[3]);
    }
}
