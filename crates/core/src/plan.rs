//! Phase 1 of the plan/execute pipeline: turning a problem into an
//! [`ExecutionPlan`].
//!
//! Freezing `m` hotspots yields `2^m` (or `2^{m−1}` under pruning)
//! sub-circuits that are *structurally identical* up to rotation angles
//! (§3.3): planning exploits that by compiling **one**
//! [`CompiledTemplate`] per distinct sub-circuit shape — in the common
//! case exactly one for the whole plan — instead of one compile per
//! branch. Phase 2 (an [`Executor`](crate::Executor)) then instantiates
//! each branch by angle-editing the shared template, so the quantum
//! compile cost of the `m` knob is `O(1)` rather than `O(2^m)` and branch
//! execution can fan out across cores.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use fq_ising::IsingModel;
use fq_sim::analytic::PreparedP1;
use fq_transpile::{CompileOptions, Device};

use crate::api::ErrorModel;
use crate::pipeline::{optimize_parameters_multilayer_tiered, optimize_parameters_tiered};
use crate::store::{MemoryStore, TemplateArtifact, TemplateIndexEntry, TemplateKey, TemplateStore};
use crate::{
    partition_problem, select_hotspots, CompiledTemplate, FqError, FrozenQubitsConfig, Partition,
    QosTier, SubproblemExec,
};

/// The structural identity of a sub-circuit: everything that determines
/// the compiled gate/routing structure, independent of coefficient values.
///
/// Two sub-problems with equal signatures can share one compiled template
/// (their circuits differ only in rotation angles); see
/// [`rebind_coefficients`](fq_circuit::rebind_coefficients).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShapeSignature {
    num_vars: usize,
    couplings: Vec<(usize, usize)>,
}

impl ShapeSignature {
    /// The signature of `model`'s QAOA circuit shape.
    #[must_use]
    pub fn of(model: &IsingModel) -> ShapeSignature {
        ShapeSignature {
            num_vars: model.num_vars(),
            couplings: model.couplings().map(|(ij, _)| ij).collect(),
        }
    }

    /// Rebuilds a signature from its parts (the wire-deserialization
    /// path of a [`TemplateArtifact`]'s key).
    #[must_use]
    pub(crate) fn from_parts(num_vars: usize, couplings: Vec<(usize, usize)>) -> ShapeSignature {
        ShapeSignature {
            num_vars,
            couplings,
        }
    }

    /// Problem width the shape was taken from.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The coupled index pairs, in the model's canonical coupling order.
    #[must_use]
    pub fn couplings(&self) -> &[(usize, usize)] {
        &self.couplings
    }
}

/// A fully planned execution: the partition into sub-problems plus the
/// shared compiled templates, ready for an [`Executor`](crate::Executor).
///
/// Build one with [`plan_execution`].
#[derive(Clone, Debug)]
pub struct ExecutionPlan {
    parent: IsingModel,
    partition: Partition,
    templates: Vec<CompiledTemplate>,
    /// `branch_templates[b]` indexes into `templates` for branch `b`.
    branch_templates: Vec<usize>,
    layers: usize,
    /// Memoized approximate-tier `(γ, β)` vectors, keyed by
    /// `(tier, seed, param_grid)` and shared across clones — see
    /// [`ExecutionPlan::tier_params`].
    tier_params: TierParamsMemo,
}

/// Key of one [`ExecutionPlan::tier_params`] memo entry:
/// `(tier, seed, param_grid)`.
type TierParamsKey = (QosTier, u64, usize);

/// One memoized `(γ_1..γ_p, β_1..β_p)` pair.
type TierParams = (Vec<f64>, Vec<f64>);

/// The memo itself, shared across plan clones.
type TierParamsMemo = Arc<Mutex<Vec<(TierParamsKey, Arc<TierParams>)>>>;

impl ExecutionPlan {
    /// The parent problem the plan partitions.
    #[must_use]
    pub fn parent_model(&self) -> &IsingModel {
        &self.parent
    }

    /// The underlying partition (sub-problems, masks, pruning info).
    #[must_use]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of branches to execute (the paper's *quantum cost*).
    #[must_use]
    pub fn num_branches(&self) -> usize {
        self.partition.executed.len()
    }

    /// The branch at `index` (panics if out of range).
    #[must_use]
    pub fn branch(&self, index: usize) -> &SubproblemExec {
        &self.partition.executed[index]
    }

    /// The aggregation weight of branch `index`: 2 when it also covers a
    /// pruned symmetric partner, 1 otherwise.
    #[must_use]
    pub fn branch_weight(&self, index: usize) -> f64 {
        if self.partition.executed[index].partner_mask.is_some() {
            2.0
        } else {
            1.0
        }
    }

    /// The shared compiled templates, one per distinct sub-circuit shape.
    #[must_use]
    pub fn templates(&self) -> &[CompiledTemplate] {
        &self.templates
    }

    /// How many distinct shapes the plan compiled (1 in the common case).
    #[must_use]
    pub fn num_templates(&self) -> usize {
        self.templates.len()
    }

    /// The template hosting branch `index` (panics if out of range).
    #[must_use]
    pub fn template_for(&self, index: usize) -> &CompiledTemplate {
        &self.templates[self.branch_templates[index]]
    }

    /// QAOA layer count the plan was built for.
    #[must_use]
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Frozen qubit indices, in freeze order.
    #[must_use]
    pub fn frozen_qubits(&self) -> &[usize] {
        &self.partition.frozen_qubits
    }

    /// Number of circuits actually executed (`2^{m−1}` under pruning).
    #[must_use]
    pub fn quantum_cost(&self) -> u64 {
        self.partition.quantum_cost()
    }

    /// The approximate tiers' `(γ, β)` vectors, optimized **once per
    /// plan** on the representative branch (branch 0) and shared by
    /// every sibling — the tiers' optimizer-amortization: siblings share
    /// the coupling structure that dominates the `p = 1` landscape, and
    /// the deviation this parameter reuse introduces is part of the
    /// measured budget the tier's
    /// [`ErrorModel`](crate::api::ErrorModel) bound covers (asserted
    /// corpus-wide by the suite's deviation test).
    ///
    /// Memoized by `(tier, seed, param_grid)`; the memo is shared across
    /// plan clones, and the computation is a pure function of the key
    /// plus branch 0's model, so which branch (or thread, or job)
    /// computes it first can never change a result bit.
    ///
    /// # Errors
    ///
    /// Propagates optimizer errors (invalid layer counts, over-wide
    /// multi-layer models).
    pub(crate) fn tier_params(
        &self,
        em: &ErrorModel,
        config: &FrozenQubitsConfig,
    ) -> Result<Arc<TierParams>, FqError> {
        let key = (em.tier, config.seed, config.param_grid);
        let mut memo = self
            .tier_params
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some((_, params)) = memo.iter().find(|(k, _)| *k == key) {
            return Ok(Arc::clone(params));
        }
        // Plans cached by a batch runner (or a long-lived service shard)
        // see a new seed per request; bound the memo so a seed sweep over
        // one plan cannot grow it without limit.
        if memo.len() >= 1024 {
            memo.clear();
        }
        let model = self.partition.executed[0].problem.model();
        let params = if self.layers == 1 {
            let prepared = PreparedP1::new(model);
            let (g, b) = optimize_parameters_tiered(&prepared, em, config.param_grid, config.seed)?;
            (vec![g], vec![b])
        } else {
            optimize_parameters_multilayer_tiered(
                model,
                self.layers,
                config.param_grid,
                em,
                config.seed,
            )?
        };
        let params = Arc::new(params);
        memo.push((key, Arc::clone(&params)));
        Ok(params)
    }
}

/// Builds the [`ExecutionPlan`] for `model` on `device`: hotspot
/// selection, partitioning with symmetry pruning, and **one** template
/// compilation per distinct sub-circuit shape.
///
/// With `config.num_frozen = 0` the plan has a single branch — the
/// original problem — which is how the baseline runs through the same
/// machinery.
///
/// # Errors
///
/// Propagates hotspot-selection, freezing, circuit-synthesis and
/// transpilation errors.
///
/// # Example
///
/// ```
/// use fq_graphs::{gen, to_ising_pm1};
/// use fq_transpile::Device;
/// use frozenqubits::{plan_execution, FrozenQubitsConfig};
///
/// let model = to_ising_pm1(&gen::barabasi_albert(12, 1, 3)?, 3);
/// let cfg = FrozenQubitsConfig::with_frozen(3);
/// let plan = plan_execution(&model, &Device::ibm_montreal(), &cfg)?;
/// // 2^{3−1} = 4 branches, all sharing a single compiled template.
/// assert_eq!(plan.num_branches(), 4);
/// assert_eq!(plan.num_templates(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn plan_execution(
    model: &IsingModel,
    device: &Device,
    config: &FrozenQubitsConfig,
) -> Result<ExecutionPlan, FqError> {
    let hotspots = select_hotspots(model, config.num_frozen, &config.hotspots)?;
    let partition = partition_problem(model, &hotspots, config.prune_symmetric)?;
    plan_from_partition(model, partition, device, config)
}

/// Like [`plan_execution`], but compiled templates are looked up in (and
/// inserted into) `cache`, extending the per-plan amortization across
/// plans: a [`BatchRunner`](crate::api::BatchRunner) passing one cache to
/// many jobs compiles each distinct shape **once per batch**, not once
/// per job.
///
/// # Errors
///
/// Propagates hotspot-selection, freezing, circuit-synthesis and
/// transpilation errors.
pub fn plan_execution_cached(
    model: &IsingModel,
    device: &Device,
    config: &FrozenQubitsConfig,
    cache: &TemplateCache,
) -> Result<ExecutionPlan, FqError> {
    let hotspots = select_hotspots(model, config.num_frozen, &config.hotspots)?;
    let partition = partition_problem(model, &hotspots, config.prune_symmetric)?;
    plan_from_partition_cached(model, partition, device, config, cache)
}

/// Builds an [`ExecutionPlan`] from an already-computed partition of
/// `model` — useful when the caller customizes partitioning.
///
/// # Errors
///
/// Propagates circuit-synthesis and transpilation errors.
pub fn plan_from_partition(
    model: &IsingModel,
    partition: Partition,
    device: &Device,
    config: &FrozenQubitsConfig,
) -> Result<ExecutionPlan, FqError> {
    plan_from_partition_cached(model, partition, device, config, &TemplateCache::new())
}

/// [`plan_from_partition`] with an external [`TemplateCache`].
///
/// # Errors
///
/// Propagates circuit-synthesis and transpilation errors.
pub fn plan_from_partition_cached(
    model: &IsingModel,
    partition: Partition,
    device: &Device,
    config: &FrozenQubitsConfig,
    cache: &TemplateCache,
) -> Result<ExecutionPlan, FqError> {
    // Group branches by structural shape; compile (or fetch) one template
    // per group.
    let mut shapes: Vec<ShapeSignature> = Vec::new();
    let mut templates: Vec<CompiledTemplate> = Vec::new();
    let mut branch_templates = Vec::with_capacity(partition.executed.len());
    for exec in &partition.executed {
        let sig = ShapeSignature::of(exec.problem.model());
        let id = match shapes.iter().position(|s| *s == sig) {
            Some(id) => id,
            None => {
                templates.push(cache.get_or_compile(
                    &sig,
                    exec.problem.model(),
                    config.layers,
                    device,
                    config.compile,
                )?);
                shapes.push(sig);
                templates.len() - 1
            }
        };
        branch_templates.push(id);
    }
    Ok(ExecutionPlan {
        parent: model.clone(),
        partition,
        templates,
        branch_templates,
        layers: config.layers,
        tier_params: Arc::default(),
    })
}

/// A concurrent cross-plan cache of compiled templates, keyed by
/// everything that determines the compiled artifact (see
/// [`TemplateKey`]): sub-circuit [`ShapeSignature`], device identity
/// (name **plus** a stable fingerprint of topology and calibration, so
/// two different `Device::uniform`/`Device::ideal` models sharing a name
/// cannot collide), QAOA layer count and [`CompileOptions`].
///
/// Templates are pre-binding (no angles baked in), so one cached entry
/// serves every job whose sub-problems share the shape, regardless of
/// coefficient values or sampling seeds.
///
/// # Storage
///
/// Since the tiered-store refactor the cache owns only the *compile
/// coordination*; where templates actually live is a pluggable
/// [`TemplateStore`] ([`TemplateCache::with_store`]). The default is the
/// in-memory [`MemoryStore`]; a
/// [`TieredStore`](crate::TieredStore) adds a disk spill tier so
/// restarts and sibling shards start warm, and
/// [`TemplateCache::insert_artifact`] /
/// [`TemplateCache::artifact`] / [`TemplateCache::index`] expose the
/// store for shard-to-shard warm transfer.
///
/// # Concurrency
///
/// Each missing key gets a **once-compile** slot: the first thread to
/// reach it compiles, concurrent requests for the *same* key block on
/// that slot and then share the result (never compiling twice —
/// observable via [`fq_transpile::compile_invocations`]), and requests
/// for *other* keys proceed untouched. A failed compile is not cached:
/// the first requester gets the error and any concurrent same-key
/// waiters retry from scratch. A compile that *panics* (e.g. unwinding
/// through a service worker's `catch_unwind`) publishes a failure from
/// its drop guard, so one panicking job cannot wedge its shape key for
/// every later job.
///
/// # Bounding
///
/// [`TemplateCache::with_capacity`] turns on the memory tier's LRU bound
/// for long-running services: once more than `capacity` templates are
/// resident, the least-recently-used entry is evicted (and demoted to
/// the spill tier, when one is configured).
/// [`TemplateCache::stats`] exposes exact counters.
#[derive(Debug)]
pub struct TemplateCache {
    store: Box<dyn TemplateStore>,
    /// Per-key once-compile slots for compiles currently in flight.
    inflight: Mutex<HashMap<TemplateKey, Arc<InflightCompile>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Exact operation counters of a [`TemplateCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheStats {
    /// Lookups served from an already-compiled template (including
    /// lookups that waited for a concurrent in-flight compile).
    pub hits: u64,
    /// Lookups that had to compile (successful or not).
    pub misses: u64,
    /// Templates evicted from the memory tier by the LRU bound.
    pub evictions: u64,
    /// Templates currently resident in the memory tier.
    pub len: usize,
    /// The LRU bound, if one is set.
    pub capacity: Option<usize>,
    /// Artifacts written to the spill tier (0 without one).
    pub spills: u64,
    /// Spill-tier hits promoted back into the memory tier.
    pub promotions: u64,
    /// Artifacts resident in the spill tier.
    pub spill_len: usize,
}

/// One in-flight compile: waiters block on the condvar until the
/// compiling thread publishes `Finished`.
#[derive(Debug)]
struct InflightCompile {
    state: Mutex<InflightState>,
    done: Condvar,
}

/// (Boxed: the slot spends most of its life as the slim `Compiling` tag
/// and only briefly carries the template's footprint.)
#[derive(Debug)]
enum InflightState {
    Compiling,
    Finished(Box<Result<CompiledTemplate, FqError>>),
}

impl InflightCompile {
    fn new() -> InflightCompile {
        InflightCompile {
            state: Mutex::new(InflightState::Compiling),
            done: Condvar::new(),
        }
    }
}

/// Publishes a failure if the compiling thread unwinds before finishing
/// (a panicking compile must not leave waiters blocked forever).
struct CompileGuard<'a> {
    cache: &'a TemplateCache,
    key: &'a TemplateKey,
    slot: &'a Arc<InflightCompile>,
    armed: bool,
}

impl Drop for CompileGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.cache.finish_compile(
                self.key,
                self.slot,
                Err(FqError::Io("template compile panicked".into())),
            );
        }
    }
}

impl Default for TemplateCache {
    fn default() -> TemplateCache {
        TemplateCache::new()
    }
}

impl TemplateCache {
    /// An empty cache over an unbounded in-memory store.
    #[must_use]
    pub fn new() -> TemplateCache {
        TemplateCache::with_store(Box::new(MemoryStore::new()))
    }

    /// An empty cache whose memory store holds at most `capacity`
    /// templates, evicting the least-recently-used one beyond that.
    /// `capacity = 0` disables caching entirely (every template is
    /// evicted right after use) — legal, but only useful for measuring
    /// the uncached baseline.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> TemplateCache {
        TemplateCache::with_store(Box::new(MemoryStore::with_capacity(capacity)))
    }

    /// A cache over an explicit [`TemplateStore`] — the persistence seam:
    /// pass a [`TieredStore`](crate::TieredStore) to spill templates to
    /// disk and start warm after restarts.
    #[must_use]
    pub fn with_store(store: Box<dyn TemplateStore>) -> TemplateCache {
        TemplateCache {
            store,
            inflight: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of distinct templates currently resident in the memory
    /// tier.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.stats().len
    }

    /// Whether the memory tier holds no templates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact operation counters (hits, misses, evictions, residency,
    /// spill activity).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let s = self.store.stats();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: s.evictions,
            len: s.len,
            capacity: s.capacity,
            spills: s.spills,
            promotions: s.promotions,
            spill_len: s.spill_len,
        }
    }

    /// Inserts a deserialized artifact directly into the backing store —
    /// the receive half of shard-to-shard warm transfer (`POST
    /// /v1/templates`, `serve --warm-from`). Not counted as a hit or a
    /// miss: nothing was looked up and nothing was compiled.
    pub fn insert_artifact(&self, artifact: &TemplateArtifact) {
        self.store.insert(artifact.key(), artifact.template());
    }

    /// The resident artifact addressed by `fingerprint`, if any — the
    /// send half of warm transfer (`GET /v1/templates/{fingerprint}`).
    #[must_use]
    pub fn artifact(&self, fingerprint: &str) -> Option<TemplateArtifact> {
        self.store.fetch_fingerprint(fingerprint)
    }

    /// Every resident artifact's fingerprint with a recency stamp,
    /// hottest first — what a freshly booted shard pulls to decide its
    /// warm set (`GET /v1/templates`).
    #[must_use]
    pub fn index(&self) -> Vec<TemplateIndexEntry> {
        self.store.index()
    }

    fn get_or_compile(
        &self,
        shape: &ShapeSignature,
        representative: &IsingModel,
        layers: usize,
        device: &Device,
        options: CompileOptions,
    ) -> Result<CompiledTemplate, FqError> {
        let key = TemplateKey::new(shape.clone(), device, layers, options);
        loop {
            if let Some(template) = self.store.fetch(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(template);
            }
            // Miss: join an in-flight compile of this key, or claim it.
            let (slot, claimed) = {
                let mut inflight = self
                    .inflight
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                match inflight.get(&key) {
                    Some(slot) => (Arc::clone(slot), false),
                    None => {
                        let slot = Arc::new(InflightCompile::new());
                        inflight.insert(key.clone(), Arc::clone(&slot));
                        (slot, true)
                    }
                }
            };
            if !claimed {
                // Wait for the compiling thread and share its outcome; a
                // failure means our shot at the key is gone — retry from
                // scratch (and possibly become the next compiler).
                let mut state = slot
                    .state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                while matches!(*state, InflightState::Compiling) {
                    state = slot
                        .done
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                match &*state {
                    InflightState::Finished(outcome) => match outcome.as_ref() {
                        Ok(template) => {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            return Ok(template.clone());
                        }
                        Err(_) => continue,
                    },
                    InflightState::Compiling => unreachable!("woken before Finished"),
                }
            }
            // We own the compile. Re-check the store first: a concurrent
            // compiler may have published between our miss and our claim
            // (store insert happens before slot removal, so seeing the
            // vacant slot implies the insert is visible).
            if let Some(template) = self.store.fetch(&key) {
                self.finish_compile(&key, &slot, Ok(template.clone()));
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(template);
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            let mut guard = CompileGuard {
                cache: self,
                key: &key,
                slot: &slot,
                armed: true,
            };
            let result = CompiledTemplate::compile(representative, layers, device, options);
            if let Ok(template) = &result {
                self.store.insert(&key, template);
            }
            guard.armed = false;
            self.finish_compile(&key, &slot, result.clone());
            return result;
        }
    }

    /// Publishes a compile outcome: waiters wake with the result and the
    /// key's slot is retired (a later failure retry gets a fresh one).
    fn finish_compile(
        &self,
        key: &TemplateKey,
        slot: &Arc<InflightCompile>,
        result: Result<CompiledTemplate, FqError>,
    ) {
        {
            let mut state = slot
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *state = InflightState::Finished(Box::new(result));
        }
        slot.done.notify_all();
        let mut inflight = self
            .inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Remove only our own slot — a concurrent retry may already have
        // replaced it.
        if inflight.get(key).is_some_and(|cur| Arc::ptr_eq(cur, slot)) {
            inflight.remove(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_graphs::{gen, to_ising_pm1};

    fn ba_model(n: usize, seed: u64) -> IsingModel {
        to_ising_pm1(&gen::barabasi_albert(n, 1, seed).unwrap(), seed)
    }

    #[test]
    fn siblings_share_one_shape() {
        let parent = ba_model(10, 1);
        let hub = parent.hotspots()[0];
        let plus = parent.freeze(&[(hub, fq_ising::Spin::UP)]).unwrap();
        let minus = parent.freeze(&[(hub, fq_ising::Spin::DOWN)]).unwrap();
        assert_eq!(
            ShapeSignature::of(plus.model()),
            ShapeSignature::of(minus.model())
        );
        assert_ne!(
            ShapeSignature::of(&parent),
            ShapeSignature::of(plus.model())
        );
    }

    // The `fq_transpile::compile_invocations()` delta assertions live in
    // the dedicated `tests/compile_amortization.rs` integration binary:
    // the counter is process-global, so measuring deltas here would race
    // with sibling unit tests compiling on other test threads.
    #[test]
    fn plan_compiles_one_template_for_m3() {
        let model = ba_model(12, 2);
        let cfg = FrozenQubitsConfig::with_frozen(3);
        let plan = plan_execution(&model, &Device::ibm_montreal(), &cfg).unwrap();
        assert_eq!(plan.num_branches(), 4);
        assert_eq!(plan.num_templates(), 1);
        for b in 0..plan.num_branches() {
            assert_eq!(plan.branch_weight(b), 2.0);
            assert!(std::ptr::eq(plan.template_for(b), &plan.templates()[0]));
        }
    }

    #[test]
    fn cache_distinguishes_same_named_devices() {
        // Non-preset devices can share a name; the calibration/topology
        // fingerprint must keep their templates apart.
        let model = ba_model(6, 5);
        let cfg = FrozenQubitsConfig::with_frozen(1);
        let cache = TemplateCache::new();
        let d1 = Device::ideal("x", fq_transpile::Topology::linear(10).unwrap());
        let d2 = Device::ideal("x", fq_transpile::Topology::grid(3, 4).unwrap());
        plan_execution_cached(&model, &d1, &cfg, &cache).unwrap();
        assert_eq!(cache.len(), 1);
        plan_execution_cached(&model, &d2, &cfg, &cache).unwrap();
        assert_eq!(cache.len(), 2, "same name, different device: no collision");
        plan_execution_cached(&model, &d1, &cfg, &cache).unwrap();
        assert_eq!(cache.len(), 2, "identical device still hits the cache");
    }

    #[test]
    fn cache_stats_are_exact_and_lru_bound_is_respected() {
        let cfg = FrozenQubitsConfig::with_frozen(1);
        let device = Device::ibm_montreal();
        let cache = TemplateCache::with_capacity(2);
        let models: Vec<IsingModel> = [(8usize, 1u64), (10, 1), (12, 1)]
            .iter()
            .map(|&(n, s)| ba_model(n, s))
            .collect();
        // Three distinct shapes through a 2-slot cache: 3 misses, then the
        // oldest (8-var) shape is evicted.
        for m in &models {
            plan_execution_cached(m, &device, &cfg, &cache).unwrap();
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (0, 3, 1));
        assert_eq!(s.len, 2);
        assert_eq!(s.capacity, Some(2));

        // The two resident shapes hit; re-planning the evicted one is a
        // miss that now evicts the 10-var shape (least recently used).
        plan_execution_cached(&models[1], &device, &cfg, &cache).unwrap();
        plan_execution_cached(&models[2], &device, &cfg, &cache).unwrap();
        assert_eq!(cache.stats().hits, 2);
        plan_execution_cached(&models[0], &device, &cfg, &cache).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (2, 4, 2));
        assert_eq!(s.len, 2);
        // 10-var was the LRU at eviction time: planning it again misses.
        plan_execution_cached(&models[1], &device, &cfg, &cache).unwrap();
        assert_eq!(cache.stats().misses, 5);
        assert!(cache.len() <= 2, "bound must hold after every operation");
    }

    #[test]
    fn concurrent_same_key_requests_compile_once() {
        // 8 threads race to plan the same shape on one shared cache; the
        // per-key once-compile slot must let exactly one of them compile.
        // (Asserted via the cache's own counters — `compile_invocations`
        // is process-global and would race with sibling unit tests; the
        // dedicated `tests/batch_parallel.rs` process pins the global
        // counter too.)
        let model = ba_model(12, 2);
        let cfg = FrozenQubitsConfig::with_frozen(2);
        let device = Device::ibm_montreal();
        let cache = TemplateCache::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| plan_execution_cached(&model, &device, &cfg, &cache).unwrap());
            }
        });
        let s = cache.stats();
        assert_eq!(s.misses, 1, "one compile for 8 concurrent same-key jobs");
        assert_eq!(s.hits, 7);
        assert_eq!(s.len, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let model = ba_model(8, 9);
        let cfg = FrozenQubitsConfig::with_frozen(1);
        let device = Device::ibm_montreal();
        let cache = TemplateCache::with_capacity(0);
        plan_execution_cached(&model, &device, &cfg, &cache).unwrap();
        plan_execution_cached(&model, &device, &cfg, &cache).unwrap();
        let s = cache.stats();
        assert!(cache.is_empty());
        assert_eq!((s.hits, s.misses, s.evictions), (0, 2, 2));
    }

    #[test]
    fn plans_are_shareable_across_worker_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExecutionPlan>();
        assert_send_sync::<CompiledTemplate>();
        assert_send_sync::<ShapeSignature>();
    }

    #[test]
    fn m0_plans_the_baseline() {
        let model = ba_model(8, 3);
        let cfg = FrozenQubitsConfig::with_frozen(0);
        let plan = plan_execution(&model, &Device::ibm_montreal(), &cfg).unwrap();
        assert_eq!(plan.num_branches(), 1);
        assert_eq!(plan.num_templates(), 1);
        assert_eq!(plan.branch_weight(0), 1.0);
        assert!(plan.frozen_qubits().is_empty());
        assert_eq!(plan.branch(0).problem.model(), &model);
    }

    #[test]
    fn asymmetric_models_plan_all_branches_with_one_template() {
        let mut model = ba_model(9, 4);
        model.set_linear(0, 0.7).unwrap(); // breaks spin-flip symmetry
        let cfg = FrozenQubitsConfig::with_frozen(2);
        let plan = plan_execution(&model, &Device::ibm_montreal(), &cfg).unwrap();
        assert_eq!(plan.num_branches(), 4, "no pruning without symmetry");
        assert_eq!(plan.num_templates(), 1, "branches still share the shape");
        assert!((0..4).all(|b| plan.branch_weight(b) == 1.0));
    }
}
