//! Phase 1 of the plan/execute pipeline: turning a problem into an
//! [`ExecutionPlan`].
//!
//! Freezing `m` hotspots yields `2^m` (or `2^{m−1}` under pruning)
//! sub-circuits that are *structurally identical* up to rotation angles
//! (§3.3): planning exploits that by compiling **one**
//! [`CompiledTemplate`] per distinct sub-circuit shape — in the common
//! case exactly one for the whole plan — instead of one compile per
//! branch. Phase 2 (an [`Executor`](crate::Executor)) then instantiates
//! each branch by angle-editing the shared template, so the quantum
//! compile cost of the `m` knob is `O(1)` rather than `O(2^m)` and branch
//! execution can fan out across cores.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use fq_ising::IsingModel;
use fq_transpile::{CompileOptions, Device};

use crate::{
    partition_problem, select_hotspots, CompiledTemplate, FqError, FrozenQubitsConfig, Partition,
    SubproblemExec,
};

/// The structural identity of a sub-circuit: everything that determines
/// the compiled gate/routing structure, independent of coefficient values.
///
/// Two sub-problems with equal signatures can share one compiled template
/// (their circuits differ only in rotation angles); see
/// [`rebind_coefficients`](fq_circuit::rebind_coefficients).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShapeSignature {
    num_vars: usize,
    couplings: Vec<(usize, usize)>,
}

impl ShapeSignature {
    /// The signature of `model`'s QAOA circuit shape.
    #[must_use]
    pub fn of(model: &IsingModel) -> ShapeSignature {
        ShapeSignature {
            num_vars: model.num_vars(),
            couplings: model.couplings().map(|(ij, _)| ij).collect(),
        }
    }

    /// Problem width the shape was taken from.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }
}

/// A fully planned execution: the partition into sub-problems plus the
/// shared compiled templates, ready for an [`Executor`](crate::Executor).
///
/// Build one with [`plan_execution`].
#[derive(Clone, Debug)]
pub struct ExecutionPlan {
    parent: IsingModel,
    partition: Partition,
    templates: Vec<CompiledTemplate>,
    /// `branch_templates[b]` indexes into `templates` for branch `b`.
    branch_templates: Vec<usize>,
    layers: usize,
}

impl ExecutionPlan {
    /// The parent problem the plan partitions.
    #[must_use]
    pub fn parent_model(&self) -> &IsingModel {
        &self.parent
    }

    /// The underlying partition (sub-problems, masks, pruning info).
    #[must_use]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of branches to execute (the paper's *quantum cost*).
    #[must_use]
    pub fn num_branches(&self) -> usize {
        self.partition.executed.len()
    }

    /// The branch at `index` (panics if out of range).
    #[must_use]
    pub fn branch(&self, index: usize) -> &SubproblemExec {
        &self.partition.executed[index]
    }

    /// The aggregation weight of branch `index`: 2 when it also covers a
    /// pruned symmetric partner, 1 otherwise.
    #[must_use]
    pub fn branch_weight(&self, index: usize) -> f64 {
        if self.partition.executed[index].partner_mask.is_some() {
            2.0
        } else {
            1.0
        }
    }

    /// The shared compiled templates, one per distinct sub-circuit shape.
    #[must_use]
    pub fn templates(&self) -> &[CompiledTemplate] {
        &self.templates
    }

    /// How many distinct shapes the plan compiled (1 in the common case).
    #[must_use]
    pub fn num_templates(&self) -> usize {
        self.templates.len()
    }

    /// The template hosting branch `index` (panics if out of range).
    #[must_use]
    pub fn template_for(&self, index: usize) -> &CompiledTemplate {
        &self.templates[self.branch_templates[index]]
    }

    /// QAOA layer count the plan was built for.
    #[must_use]
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Frozen qubit indices, in freeze order.
    #[must_use]
    pub fn frozen_qubits(&self) -> &[usize] {
        &self.partition.frozen_qubits
    }

    /// Number of circuits actually executed (`2^{m−1}` under pruning).
    #[must_use]
    pub fn quantum_cost(&self) -> u64 {
        self.partition.quantum_cost()
    }
}

/// Builds the [`ExecutionPlan`] for `model` on `device`: hotspot
/// selection, partitioning with symmetry pruning, and **one** template
/// compilation per distinct sub-circuit shape.
///
/// With `config.num_frozen = 0` the plan has a single branch — the
/// original problem — which is how the baseline runs through the same
/// machinery.
///
/// # Errors
///
/// Propagates hotspot-selection, freezing, circuit-synthesis and
/// transpilation errors.
///
/// # Example
///
/// ```
/// use fq_graphs::{gen, to_ising_pm1};
/// use fq_transpile::Device;
/// use frozenqubits::{plan_execution, FrozenQubitsConfig};
///
/// let model = to_ising_pm1(&gen::barabasi_albert(12, 1, 3)?, 3);
/// let cfg = FrozenQubitsConfig::with_frozen(3);
/// let plan = plan_execution(&model, &Device::ibm_montreal(), &cfg)?;
/// // 2^{3−1} = 4 branches, all sharing a single compiled template.
/// assert_eq!(plan.num_branches(), 4);
/// assert_eq!(plan.num_templates(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn plan_execution(
    model: &IsingModel,
    device: &Device,
    config: &FrozenQubitsConfig,
) -> Result<ExecutionPlan, FqError> {
    let hotspots = select_hotspots(model, config.num_frozen, &config.hotspots)?;
    let partition = partition_problem(model, &hotspots, config.prune_symmetric)?;
    plan_from_partition(model, partition, device, config)
}

/// Like [`plan_execution`], but compiled templates are looked up in (and
/// inserted into) `cache`, extending the per-plan amortization across
/// plans: a [`BatchRunner`](crate::api::BatchRunner) passing one cache to
/// many jobs compiles each distinct shape **once per batch**, not once
/// per job.
///
/// # Errors
///
/// Propagates hotspot-selection, freezing, circuit-synthesis and
/// transpilation errors.
pub fn plan_execution_cached(
    model: &IsingModel,
    device: &Device,
    config: &FrozenQubitsConfig,
    cache: &TemplateCache,
) -> Result<ExecutionPlan, FqError> {
    let hotspots = select_hotspots(model, config.num_frozen, &config.hotspots)?;
    let partition = partition_problem(model, &hotspots, config.prune_symmetric)?;
    plan_from_partition_cached(model, partition, device, config, cache)
}

/// Builds an [`ExecutionPlan`] from an already-computed partition of
/// `model` — useful when the caller customizes partitioning.
///
/// # Errors
///
/// Propagates circuit-synthesis and transpilation errors.
pub fn plan_from_partition(
    model: &IsingModel,
    partition: Partition,
    device: &Device,
    config: &FrozenQubitsConfig,
) -> Result<ExecutionPlan, FqError> {
    plan_from_partition_cached(model, partition, device, config, &TemplateCache::new())
}

/// [`plan_from_partition`] with an external [`TemplateCache`].
///
/// # Errors
///
/// Propagates circuit-synthesis and transpilation errors.
pub fn plan_from_partition_cached(
    model: &IsingModel,
    partition: Partition,
    device: &Device,
    config: &FrozenQubitsConfig,
    cache: &TemplateCache,
) -> Result<ExecutionPlan, FqError> {
    // Group branches by structural shape; compile (or fetch) one template
    // per group.
    let mut shapes: Vec<ShapeSignature> = Vec::new();
    let mut templates: Vec<CompiledTemplate> = Vec::new();
    let mut branch_templates = Vec::with_capacity(partition.executed.len());
    for exec in &partition.executed {
        let sig = ShapeSignature::of(exec.problem.model());
        let id = match shapes.iter().position(|s| *s == sig) {
            Some(id) => id,
            None => {
                templates.push(cache.get_or_compile(
                    &sig,
                    exec.problem.model(),
                    config.layers,
                    device,
                    config.compile,
                )?);
                shapes.push(sig);
                templates.len() - 1
            }
        };
        branch_templates.push(id);
    }
    Ok(ExecutionPlan {
        parent: model.clone(),
        partition,
        templates,
        branch_templates,
        layers: config.layers,
    })
}

/// A concurrent cross-plan store of compiled templates, keyed by
/// everything that determines the compiled artifact: sub-circuit
/// [`ShapeSignature`], device identity (name **plus** a fingerprint of
/// topology and calibration, so two different
/// `Device::uniform`/`Device::ideal` models sharing a name cannot
/// collide), QAOA layer count and [`CompileOptions`].
///
/// Templates are pre-binding (no angles baked in), so one cached entry
/// serves every job whose sub-problems share the shape, regardless of
/// coefficient values or sampling seeds.
///
/// # Concurrency
///
/// The map is sharded by key hash behind `RwLock`s, so lookups of
/// different templates never contend. Each key carries a **once-compile**
/// slot: the first thread to reach a missing key compiles while holding
/// only that key's mutex, concurrent requests for the *same* key block on
/// it and then share the result (never compiling twice — observable via
/// [`fq_transpile::compile_invocations`]), and requests for *other* keys
/// proceed untouched. A failed compile is not cached: the entry is
/// removed, the first requester gets the error, and any concurrent
/// same-key waiters retry from scratch.
///
/// # Bounding
///
/// [`TemplateCache::with_capacity`] turns on an LRU bound for
/// long-running services: once more than `capacity` templates are
/// resident, the least-recently-used completed entry is evicted.
/// [`TemplateCache::stats`] exposes exact hit/miss/eviction counters.
#[derive(Debug)]
pub struct TemplateCache {
    shards: Vec<RwLock<HashMap<TemplateKey, Arc<TemplateEntry>>>>,
    capacity: Option<usize>,
    /// Monotonic logical clock stamping every access for LRU ordering.
    clock: AtomicU64,
    /// Number of resident completed templates (the public `len`).
    resident: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Exact operation counters of a [`TemplateCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheStats {
    /// Lookups served from an already-compiled template (including
    /// lookups that waited for a concurrent in-flight compile).
    pub hits: u64,
    /// Lookups that had to compile (successful or not).
    pub misses: u64,
    /// Templates evicted by the LRU bound.
    pub evictions: u64,
    /// Templates currently resident.
    pub len: usize,
    /// The LRU bound, if one is set.
    pub capacity: Option<usize>,
}

/// One key's slot. `Pending` means the creating thread is compiling under
/// the entry mutex; `Failed` marks an entry orphaned by a failed compile
/// so waiters know to retry a fresh lookup. `Ready` entries never change
/// again. (Boxed: the slot spends its life as a slim `Pending`/`Failed`
/// tag far more often than it pays the template's footprint.)
#[derive(Debug)]
enum Slot {
    Pending,
    Ready(Box<CompiledTemplate>),
    Failed,
}

#[derive(Debug)]
struct TemplateEntry {
    slot: Mutex<Slot>,
    last_used: AtomicU64,
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct TemplateKey {
    shape: ShapeSignature,
    device: String,
    device_fingerprint: u64,
    layers: usize,
    options: CompileOptions,
}

/// Hashes every device property that layout, routing, scheduling or the
/// noise models read: topology, per-edge CNOT errors, per-qubit readout
/// errors and coherence times, and gate durations.
fn device_fingerprint(device: &Device) -> u64 {
    use std::hash::{Hash as _, Hasher as _};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    let n = device.num_qubits();
    n.hash(&mut h);
    for &(a, b) in device.topology().edges() {
        (a, b).hash(&mut h);
        device.cnot_error(a, b).to_bits().hash(&mut h);
    }
    for q in 0..n {
        device.readout_error(q).to_bits().hash(&mut h);
        device.t1_us(q).to_bits().hash(&mut h);
        device.t2_us(q).to_bits().hash(&mut h);
    }
    let durations = device.durations();
    durations.single_ns.to_bits().hash(&mut h);
    durations.cx_ns.to_bits().hash(&mut h);
    durations.readout_ns.to_bits().hash(&mut h);
    h.finish()
}

/// Shard count: enough to make cross-key contention negligible on large
/// machines while keeping the LRU eviction scan trivial.
const CACHE_SHARDS: usize = 16;

impl Default for TemplateCache {
    fn default() -> TemplateCache {
        TemplateCache::new()
    }
}

impl TemplateCache {
    /// An empty, unbounded cache.
    #[must_use]
    pub fn new() -> TemplateCache {
        TemplateCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            capacity: None,
            clock: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// An empty cache holding at most `capacity` templates, evicting the
    /// least-recently-used one beyond that. `capacity = 0` disables
    /// caching entirely (every template is evicted right after use) —
    /// legal, but only useful for measuring the uncached baseline.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> TemplateCache {
        TemplateCache {
            capacity: Some(capacity),
            ..TemplateCache::new()
        }
    }

    /// Number of distinct templates currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Whether the cache holds no templates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact operation counters (hits, misses, evictions, residency).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.len(),
            capacity: self.capacity,
        }
    }

    fn shard_of(&self, key: &TemplateKey) -> usize {
        use std::hash::{Hash as _, Hasher as _};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn get_or_compile(
        &self,
        shape: &ShapeSignature,
        representative: &IsingModel,
        layers: usize,
        device: &Device,
        options: CompileOptions,
    ) -> Result<CompiledTemplate, FqError> {
        let key = TemplateKey {
            shape: shape.clone(),
            device: device.name().to_string(),
            device_fingerprint: device_fingerprint(device),
            layers,
            options,
        };
        let shard = &self.shards[self.shard_of(&key)];
        loop {
            let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
            // Fast path: the key exists (read lock only).
            let entry = shard.read().expect("cache shard lock").get(&key).cloned();
            let entry = match entry {
                Some(entry) => entry,
                None => {
                    let mut map = shard.write().expect("cache shard lock");
                    map.entry(key.clone())
                        .or_insert_with(|| {
                            Arc::new(TemplateEntry {
                                slot: Mutex::new(Slot::Pending),
                                last_used: AtomicU64::new(stamp),
                            })
                        })
                        .clone()
                }
            };
            entry.last_used.store(stamp, Ordering::Relaxed);
            // The per-key once-compile gate: whoever acquires the slot
            // first and finds it `Pending` compiles while holding it;
            // everyone else blocks here (on this key only) and shares the
            // outcome. A poisoned slot means a compile panicked (e.g.
            // unwound through a service worker's `catch_unwind`) and left
            // `Pending` behind with no compiling thread — recover and
            // fall through: the recovering waiter sees `Pending` and
            // simply takes the compile over, so one panicking job cannot
            // wedge its key for every later job of the same shape.
            let mut slot = entry
                .slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match &*slot {
                Slot::Ready(template) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((**template).clone());
                }
                Slot::Failed => {
                    // The compile we waited on failed and the entry was
                    // removed from the map; retry against a fresh entry.
                    drop(slot);
                    continue;
                }
                Slot::Pending => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    match CompiledTemplate::compile(representative, layers, device, options) {
                        Ok(template) => {
                            *slot = Slot::Ready(Box::new(template.clone()));
                            // Count while still holding the slot lock: an
                            // evictor skips locked entries, so no entry is
                            // ever evictable before it is counted.
                            self.resident.fetch_add(1, Ordering::Relaxed);
                            drop(slot);
                            self.enforce_capacity();
                            return Ok(template);
                        }
                        Err(e) => {
                            *slot = Slot::Failed;
                            drop(slot);
                            let mut map = shard.write().expect("cache shard lock");
                            // Remove only our own entry — a concurrent
                            // retry may already have replaced it.
                            if map.get(&key).is_some_and(|cur| Arc::ptr_eq(cur, &entry)) {
                                map.remove(&key);
                            }
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// Evicts least-recently-used completed templates until the resident
    /// count respects the capacity bound.
    fn enforce_capacity(&self) {
        let Some(capacity) = self.capacity else {
            return;
        };
        while self.resident.load(Ordering::Relaxed) > capacity {
            // Scan for the oldest completed entry. In-flight entries
            // (slot mutex held by a compiling thread) are skipped — they
            // are not resident yet. Locked-but-counted entries can only
            // be momentarily mid-publication (the count is taken while
            // the slot lock is still held), so skipping them merely
            // delays their eligibility to the next pass.
            let mut victim: Option<(u64, usize, TemplateKey, Arc<TemplateEntry>)> = None;
            for (si, shard) in self.shards.iter().enumerate() {
                let map = shard.read().expect("cache shard lock");
                for (key, entry) in map.iter() {
                    let Ok(slot) = entry.slot.try_lock() else {
                        continue;
                    };
                    if !matches!(&*slot, Slot::Ready(_)) {
                        continue;
                    }
                    let stamp = entry.last_used.load(Ordering::Relaxed);
                    if victim.as_ref().is_none_or(|&(s, ..)| stamp < s) {
                        victim = Some((stamp, si, key.clone(), Arc::clone(entry)));
                    }
                }
            }
            let Some((_, si, key, entry)) = victim else {
                return;
            };
            let mut map = self.shards[si].write().expect("cache shard lock");
            // Remove only the exact entry we selected: a concurrent
            // evictor may have removed it already and a fresh (possibly
            // still Pending, uncounted) entry may have taken the key.
            // `Ready` entries never change state again, so an identity
            // match guarantees we un-reside exactly one counted template;
            // on a mismatch the loop simply rescans.
            if map.get(&key).is_some_and(|cur| Arc::ptr_eq(cur, &entry)) {
                map.remove(&key);
                self.resident.fetch_sub(1, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_graphs::{gen, to_ising_pm1};

    fn ba_model(n: usize, seed: u64) -> IsingModel {
        to_ising_pm1(&gen::barabasi_albert(n, 1, seed).unwrap(), seed)
    }

    #[test]
    fn siblings_share_one_shape() {
        let parent = ba_model(10, 1);
        let hub = parent.hotspots()[0];
        let plus = parent.freeze(&[(hub, fq_ising::Spin::UP)]).unwrap();
        let minus = parent.freeze(&[(hub, fq_ising::Spin::DOWN)]).unwrap();
        assert_eq!(
            ShapeSignature::of(plus.model()),
            ShapeSignature::of(minus.model())
        );
        assert_ne!(
            ShapeSignature::of(&parent),
            ShapeSignature::of(plus.model())
        );
    }

    // The `fq_transpile::compile_invocations()` delta assertions live in
    // the dedicated `tests/compile_amortization.rs` integration binary:
    // the counter is process-global, so measuring deltas here would race
    // with sibling unit tests compiling on other test threads.
    #[test]
    fn plan_compiles_one_template_for_m3() {
        let model = ba_model(12, 2);
        let cfg = FrozenQubitsConfig::with_frozen(3);
        let plan = plan_execution(&model, &Device::ibm_montreal(), &cfg).unwrap();
        assert_eq!(plan.num_branches(), 4);
        assert_eq!(plan.num_templates(), 1);
        for b in 0..plan.num_branches() {
            assert_eq!(plan.branch_weight(b), 2.0);
            assert!(std::ptr::eq(plan.template_for(b), &plan.templates()[0]));
        }
    }

    #[test]
    fn cache_distinguishes_same_named_devices() {
        // Non-preset devices can share a name; the calibration/topology
        // fingerprint must keep their templates apart.
        let model = ba_model(6, 5);
        let cfg = FrozenQubitsConfig::with_frozen(1);
        let cache = TemplateCache::new();
        let d1 = Device::ideal("x", fq_transpile::Topology::linear(10).unwrap());
        let d2 = Device::ideal("x", fq_transpile::Topology::grid(3, 4).unwrap());
        plan_execution_cached(&model, &d1, &cfg, &cache).unwrap();
        assert_eq!(cache.len(), 1);
        plan_execution_cached(&model, &d2, &cfg, &cache).unwrap();
        assert_eq!(cache.len(), 2, "same name, different device: no collision");
        plan_execution_cached(&model, &d1, &cfg, &cache).unwrap();
        assert_eq!(cache.len(), 2, "identical device still hits the cache");
    }

    #[test]
    fn cache_stats_are_exact_and_lru_bound_is_respected() {
        let cfg = FrozenQubitsConfig::with_frozen(1);
        let device = Device::ibm_montreal();
        let cache = TemplateCache::with_capacity(2);
        let models: Vec<IsingModel> = [(8usize, 1u64), (10, 1), (12, 1)]
            .iter()
            .map(|&(n, s)| ba_model(n, s))
            .collect();
        // Three distinct shapes through a 2-slot cache: 3 misses, then the
        // oldest (8-var) shape is evicted.
        for m in &models {
            plan_execution_cached(m, &device, &cfg, &cache).unwrap();
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (0, 3, 1));
        assert_eq!(s.len, 2);
        assert_eq!(s.capacity, Some(2));

        // The two resident shapes hit; re-planning the evicted one is a
        // miss that now evicts the 10-var shape (least recently used).
        plan_execution_cached(&models[1], &device, &cfg, &cache).unwrap();
        plan_execution_cached(&models[2], &device, &cfg, &cache).unwrap();
        assert_eq!(cache.stats().hits, 2);
        plan_execution_cached(&models[0], &device, &cfg, &cache).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (2, 4, 2));
        assert_eq!(s.len, 2);
        // 10-var was the LRU at eviction time: planning it again misses.
        plan_execution_cached(&models[1], &device, &cfg, &cache).unwrap();
        assert_eq!(cache.stats().misses, 5);
        assert!(cache.len() <= 2, "bound must hold after every operation");
    }

    #[test]
    fn concurrent_same_key_requests_compile_once() {
        // 8 threads race to plan the same shape on one shared cache; the
        // per-key once-compile slot must let exactly one of them compile.
        // (Asserted via the cache's own counters — `compile_invocations`
        // is process-global and would race with sibling unit tests; the
        // dedicated `tests/batch_parallel.rs` process pins the global
        // counter too.)
        let model = ba_model(12, 2);
        let cfg = FrozenQubitsConfig::with_frozen(2);
        let device = Device::ibm_montreal();
        let cache = TemplateCache::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| plan_execution_cached(&model, &device, &cfg, &cache).unwrap());
            }
        });
        let s = cache.stats();
        assert_eq!(s.misses, 1, "one compile for 8 concurrent same-key jobs");
        assert_eq!(s.hits, 7);
        assert_eq!(s.len, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let model = ba_model(8, 9);
        let cfg = FrozenQubitsConfig::with_frozen(1);
        let device = Device::ibm_montreal();
        let cache = TemplateCache::with_capacity(0);
        plan_execution_cached(&model, &device, &cfg, &cache).unwrap();
        plan_execution_cached(&model, &device, &cfg, &cache).unwrap();
        let s = cache.stats();
        assert!(cache.is_empty());
        assert_eq!((s.hits, s.misses, s.evictions), (0, 2, 2));
    }

    #[test]
    fn plans_are_shareable_across_worker_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExecutionPlan>();
        assert_send_sync::<CompiledTemplate>();
        assert_send_sync::<ShapeSignature>();
    }

    #[test]
    fn m0_plans_the_baseline() {
        let model = ba_model(8, 3);
        let cfg = FrozenQubitsConfig::with_frozen(0);
        let plan = plan_execution(&model, &Device::ibm_montreal(), &cfg).unwrap();
        assert_eq!(plan.num_branches(), 1);
        assert_eq!(plan.num_templates(), 1);
        assert_eq!(plan.branch_weight(0), 1.0);
        assert!(plan.frozen_qubits().is_empty());
        assert_eq!(plan.branch(0).problem.model(), &model);
    }

    #[test]
    fn asymmetric_models_plan_all_branches_with_one_template() {
        let mut model = ba_model(9, 4);
        model.set_linear(0, 0.7).unwrap(); // breaks spin-flip symmetry
        let cfg = FrozenQubitsConfig::with_frozen(2);
        let plan = plan_execution(&model, &Device::ibm_montreal(), &cfg).unwrap();
        assert_eq!(plan.num_branches(), 4, "no pruning without symmetry");
        assert_eq!(plan.num_templates(), 1, "branches still share the shape");
        assert!((0..4).all(|b| plan.branch_weight(b) == 1.0));
    }
}
