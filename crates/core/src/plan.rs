//! Phase 1 of the plan/execute pipeline: turning a problem into an
//! [`ExecutionPlan`].
//!
//! Freezing `m` hotspots yields `2^m` (or `2^{m−1}` under pruning)
//! sub-circuits that are *structurally identical* up to rotation angles
//! (§3.3): planning exploits that by compiling **one**
//! [`CompiledTemplate`] per distinct sub-circuit shape — in the common
//! case exactly one for the whole plan — instead of one compile per
//! branch. Phase 2 (an [`Executor`](crate::Executor)) then instantiates
//! each branch by angle-editing the shared template, so the quantum
//! compile cost of the `m` knob is `O(1)` rather than `O(2^m)` and branch
//! execution can fan out across cores.

use std::collections::HashMap;

use fq_ising::IsingModel;
use fq_transpile::{CompileOptions, Device};

use crate::{
    partition_problem, select_hotspots, CompiledTemplate, FqError, FrozenQubitsConfig, Partition,
    SubproblemExec,
};

/// The structural identity of a sub-circuit: everything that determines
/// the compiled gate/routing structure, independent of coefficient values.
///
/// Two sub-problems with equal signatures can share one compiled template
/// (their circuits differ only in rotation angles); see
/// [`rebind_coefficients`](fq_circuit::rebind_coefficients).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShapeSignature {
    num_vars: usize,
    couplings: Vec<(usize, usize)>,
}

impl ShapeSignature {
    /// The signature of `model`'s QAOA circuit shape.
    #[must_use]
    pub fn of(model: &IsingModel) -> ShapeSignature {
        ShapeSignature {
            num_vars: model.num_vars(),
            couplings: model.couplings().map(|(ij, _)| ij).collect(),
        }
    }

    /// Problem width the shape was taken from.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }
}

/// A fully planned execution: the partition into sub-problems plus the
/// shared compiled templates, ready for an [`Executor`](crate::Executor).
///
/// Build one with [`plan_execution`].
#[derive(Clone, Debug)]
pub struct ExecutionPlan {
    parent: IsingModel,
    partition: Partition,
    templates: Vec<CompiledTemplate>,
    /// `branch_templates[b]` indexes into `templates` for branch `b`.
    branch_templates: Vec<usize>,
    layers: usize,
}

impl ExecutionPlan {
    /// The parent problem the plan partitions.
    #[must_use]
    pub fn parent_model(&self) -> &IsingModel {
        &self.parent
    }

    /// The underlying partition (sub-problems, masks, pruning info).
    #[must_use]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of branches to execute (the paper's *quantum cost*).
    #[must_use]
    pub fn num_branches(&self) -> usize {
        self.partition.executed.len()
    }

    /// The branch at `index` (panics if out of range).
    #[must_use]
    pub fn branch(&self, index: usize) -> &SubproblemExec {
        &self.partition.executed[index]
    }

    /// The aggregation weight of branch `index`: 2 when it also covers a
    /// pruned symmetric partner, 1 otherwise.
    #[must_use]
    pub fn branch_weight(&self, index: usize) -> f64 {
        if self.partition.executed[index].partner_mask.is_some() {
            2.0
        } else {
            1.0
        }
    }

    /// The shared compiled templates, one per distinct sub-circuit shape.
    #[must_use]
    pub fn templates(&self) -> &[CompiledTemplate] {
        &self.templates
    }

    /// How many distinct shapes the plan compiled (1 in the common case).
    #[must_use]
    pub fn num_templates(&self) -> usize {
        self.templates.len()
    }

    /// The template hosting branch `index` (panics if out of range).
    #[must_use]
    pub fn template_for(&self, index: usize) -> &CompiledTemplate {
        &self.templates[self.branch_templates[index]]
    }

    /// QAOA layer count the plan was built for.
    #[must_use]
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Frozen qubit indices, in freeze order.
    #[must_use]
    pub fn frozen_qubits(&self) -> &[usize] {
        &self.partition.frozen_qubits
    }

    /// Number of circuits actually executed (`2^{m−1}` under pruning).
    #[must_use]
    pub fn quantum_cost(&self) -> u64 {
        self.partition.quantum_cost()
    }
}

/// Builds the [`ExecutionPlan`] for `model` on `device`: hotspot
/// selection, partitioning with symmetry pruning, and **one** template
/// compilation per distinct sub-circuit shape.
///
/// With `config.num_frozen = 0` the plan has a single branch — the
/// original problem — which is how the baseline runs through the same
/// machinery.
///
/// # Errors
///
/// Propagates hotspot-selection, freezing, circuit-synthesis and
/// transpilation errors.
///
/// # Example
///
/// ```
/// use fq_graphs::{gen, to_ising_pm1};
/// use fq_transpile::Device;
/// use frozenqubits::{plan_execution, FrozenQubitsConfig};
///
/// let model = to_ising_pm1(&gen::barabasi_albert(12, 1, 3)?, 3);
/// let cfg = FrozenQubitsConfig::with_frozen(3);
/// let plan = plan_execution(&model, &Device::ibm_montreal(), &cfg)?;
/// // 2^{3−1} = 4 branches, all sharing a single compiled template.
/// assert_eq!(plan.num_branches(), 4);
/// assert_eq!(plan.num_templates(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn plan_execution(
    model: &IsingModel,
    device: &Device,
    config: &FrozenQubitsConfig,
) -> Result<ExecutionPlan, FqError> {
    let hotspots = select_hotspots(model, config.num_frozen, &config.hotspots)?;
    let partition = partition_problem(model, &hotspots, config.prune_symmetric)?;
    plan_from_partition(model, partition, device, config)
}

/// Like [`plan_execution`], but compiled templates are looked up in (and
/// inserted into) `cache`, extending the per-plan amortization across
/// plans: a [`BatchRunner`](crate::api::BatchRunner) passing one cache to
/// many jobs compiles each distinct shape **once per batch**, not once
/// per job.
///
/// # Errors
///
/// Propagates hotspot-selection, freezing, circuit-synthesis and
/// transpilation errors.
pub fn plan_execution_cached(
    model: &IsingModel,
    device: &Device,
    config: &FrozenQubitsConfig,
    cache: &mut TemplateCache,
) -> Result<ExecutionPlan, FqError> {
    let hotspots = select_hotspots(model, config.num_frozen, &config.hotspots)?;
    let partition = partition_problem(model, &hotspots, config.prune_symmetric)?;
    plan_from_partition_cached(model, partition, device, config, cache)
}

/// Builds an [`ExecutionPlan`] from an already-computed partition of
/// `model` — useful when the caller customizes partitioning.
///
/// # Errors
///
/// Propagates circuit-synthesis and transpilation errors.
pub fn plan_from_partition(
    model: &IsingModel,
    partition: Partition,
    device: &Device,
    config: &FrozenQubitsConfig,
) -> Result<ExecutionPlan, FqError> {
    plan_from_partition_cached(model, partition, device, config, &mut TemplateCache::new())
}

/// [`plan_from_partition`] with an external [`TemplateCache`].
///
/// # Errors
///
/// Propagates circuit-synthesis and transpilation errors.
pub fn plan_from_partition_cached(
    model: &IsingModel,
    partition: Partition,
    device: &Device,
    config: &FrozenQubitsConfig,
    cache: &mut TemplateCache,
) -> Result<ExecutionPlan, FqError> {
    // Group branches by structural shape; compile (or fetch) one template
    // per group.
    let mut shapes: Vec<ShapeSignature> = Vec::new();
    let mut templates: Vec<CompiledTemplate> = Vec::new();
    let mut branch_templates = Vec::with_capacity(partition.executed.len());
    for exec in &partition.executed {
        let sig = ShapeSignature::of(exec.problem.model());
        let id = match shapes.iter().position(|s| *s == sig) {
            Some(id) => id,
            None => {
                templates.push(cache.get_or_compile(
                    &sig,
                    exec.problem.model(),
                    config.layers,
                    device,
                    config.compile,
                )?);
                shapes.push(sig);
                templates.len() - 1
            }
        };
        branch_templates.push(id);
    }
    Ok(ExecutionPlan {
        parent: model.clone(),
        partition,
        templates,
        branch_templates,
        layers: config.layers,
    })
}

/// A cross-plan store of compiled templates, keyed by everything that
/// determines the compiled artifact: sub-circuit [`ShapeSignature`],
/// device identity (name **plus** a fingerprint of topology and
/// calibration, so two different `Device::uniform`/`Device::ideal`
/// models sharing a name cannot collide), QAOA layer count and
/// [`CompileOptions`].
///
/// Templates are pre-binding (no angles baked in), so one cached entry
/// serves every job whose sub-problems share the shape, regardless of
/// coefficient values or sampling seeds.
#[derive(Clone, Debug, Default)]
pub struct TemplateCache {
    entries: HashMap<TemplateKey, CompiledTemplate>,
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct TemplateKey {
    shape: ShapeSignature,
    device: String,
    device_fingerprint: u64,
    layers: usize,
    options: CompileOptions,
}

/// Hashes every device property that layout, routing, scheduling or the
/// noise models read: topology, per-edge CNOT errors, per-qubit readout
/// errors and coherence times, and gate durations.
fn device_fingerprint(device: &Device) -> u64 {
    use std::hash::{Hash as _, Hasher as _};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    let n = device.num_qubits();
    n.hash(&mut h);
    for &(a, b) in device.topology().edges() {
        (a, b).hash(&mut h);
        device.cnot_error(a, b).to_bits().hash(&mut h);
    }
    for q in 0..n {
        device.readout_error(q).to_bits().hash(&mut h);
        device.t1_us(q).to_bits().hash(&mut h);
        device.t2_us(q).to_bits().hash(&mut h);
    }
    let durations = device.durations();
    durations.single_ns.to_bits().hash(&mut h);
    durations.cx_ns.to_bits().hash(&mut h);
    durations.readout_ns.to_bits().hash(&mut h);
    h.finish()
}

impl TemplateCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> TemplateCache {
        TemplateCache::default()
    }

    /// Number of distinct templates compiled so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no templates yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn get_or_compile(
        &mut self,
        shape: &ShapeSignature,
        representative: &IsingModel,
        layers: usize,
        device: &Device,
        options: CompileOptions,
    ) -> Result<CompiledTemplate, FqError> {
        let key = TemplateKey {
            shape: shape.clone(),
            device: device.name().to_string(),
            device_fingerprint: device_fingerprint(device),
            layers,
            options,
        };
        if let Some(hit) = self.entries.get(&key) {
            return Ok(hit.clone());
        }
        let template = CompiledTemplate::compile(representative, layers, device, options)?;
        self.entries.insert(key, template.clone());
        Ok(template)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_graphs::{gen, to_ising_pm1};

    fn ba_model(n: usize, seed: u64) -> IsingModel {
        to_ising_pm1(&gen::barabasi_albert(n, 1, seed).unwrap(), seed)
    }

    #[test]
    fn siblings_share_one_shape() {
        let parent = ba_model(10, 1);
        let hub = parent.hotspots()[0];
        let plus = parent.freeze(&[(hub, fq_ising::Spin::UP)]).unwrap();
        let minus = parent.freeze(&[(hub, fq_ising::Spin::DOWN)]).unwrap();
        assert_eq!(
            ShapeSignature::of(plus.model()),
            ShapeSignature::of(minus.model())
        );
        assert_ne!(
            ShapeSignature::of(&parent),
            ShapeSignature::of(plus.model())
        );
    }

    // The `fq_transpile::compile_invocations()` delta assertions live in
    // the dedicated `tests/compile_amortization.rs` integration binary:
    // the counter is process-global, so measuring deltas here would race
    // with sibling unit tests compiling on other test threads.
    #[test]
    fn plan_compiles_one_template_for_m3() {
        let model = ba_model(12, 2);
        let cfg = FrozenQubitsConfig::with_frozen(3);
        let plan = plan_execution(&model, &Device::ibm_montreal(), &cfg).unwrap();
        assert_eq!(plan.num_branches(), 4);
        assert_eq!(plan.num_templates(), 1);
        for b in 0..plan.num_branches() {
            assert_eq!(plan.branch_weight(b), 2.0);
            assert!(std::ptr::eq(plan.template_for(b), &plan.templates()[0]));
        }
    }

    #[test]
    fn cache_distinguishes_same_named_devices() {
        // Non-preset devices can share a name; the calibration/topology
        // fingerprint must keep their templates apart.
        let model = ba_model(6, 5);
        let cfg = FrozenQubitsConfig::with_frozen(1);
        let mut cache = TemplateCache::new();
        let d1 = Device::ideal("x", fq_transpile::Topology::linear(10).unwrap());
        let d2 = Device::ideal("x", fq_transpile::Topology::grid(3, 4).unwrap());
        plan_execution_cached(&model, &d1, &cfg, &mut cache).unwrap();
        assert_eq!(cache.len(), 1);
        plan_execution_cached(&model, &d2, &cfg, &mut cache).unwrap();
        assert_eq!(cache.len(), 2, "same name, different device: no collision");
        plan_execution_cached(&model, &d1, &cfg, &mut cache).unwrap();
        assert_eq!(cache.len(), 2, "identical device still hits the cache");
    }

    #[test]
    fn plans_are_shareable_across_worker_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExecutionPlan>();
        assert_send_sync::<CompiledTemplate>();
        assert_send_sync::<ShapeSignature>();
    }

    #[test]
    fn m0_plans_the_baseline() {
        let model = ba_model(8, 3);
        let cfg = FrozenQubitsConfig::with_frozen(0);
        let plan = plan_execution(&model, &Device::ibm_montreal(), &cfg).unwrap();
        assert_eq!(plan.num_branches(), 1);
        assert_eq!(plan.num_templates(), 1);
        assert_eq!(plan.branch_weight(0), 1.0);
        assert!(plan.frozen_qubits().is_empty());
        assert_eq!(plan.branch(0).problem.model(), &model);
    }

    #[test]
    fn asymmetric_models_plan_all_branches_with_one_template() {
        let mut model = ba_model(9, 4);
        model.set_linear(0, 0.7).unwrap(); // breaks spin-flip symmetry
        let cfg = FrozenQubitsConfig::with_frozen(2);
        let plan = plan_execution(&model, &Device::ibm_montreal(), &cfg).unwrap();
        assert_eq!(plan.num_branches(), 4, "no pruning without symmetry");
        assert_eq!(plan.num_templates(), 1, "branches still share the shape");
        assert!((0..4).all(|b| plan.branch_weight(b) == 1.0));
    }
}
