//! Figures of merit: Approximation Ratio Gap (Eq. 4), Approximation Ratio
//! (Eq. 5), improvement factors and geometric means.

/// The Approximation Ratio Gap (Eq. 4):
/// `ARG = 100 · |(EV_ideal − EV_real) / EV_ideal|`. Lower is better.
///
/// Returns `0` when both values coincide; when `EV_ideal` is (near) zero
/// with a non-zero `EV_real`, the gap is unbounded and `f64::INFINITY` is
/// returned.
///
/// # Example
///
/// ```
/// use frozenqubits::metrics::arg;
///
/// assert_eq!(arg(-10.0, -10.0), 0.0);
/// assert_eq!(arg(-10.0, -5.0), 50.0);
/// ```
#[must_use]
pub fn arg(ev_ideal: f64, ev_real: f64) -> f64 {
    let diff = ev_ideal - ev_real;
    if diff == 0.0 {
        return 0.0;
    }
    if ev_ideal == 0.0 {
        return f64::INFINITY;
    }
    100.0 * (diff / ev_ideal).abs()
}

/// The Approximation Ratio (Eq. 5): `AR = EV / C_min`, maximal (1) when
/// every outcome is a global optimum. `C_min` must be negative (as in the
/// paper's minimization benchmarks) for AR ∈ [−∞, 1] to hold.
///
/// # Example
///
/// ```
/// use frozenqubits::metrics::approximation_ratio;
///
/// assert_eq!(approximation_ratio(-8.0, -10.0), 0.8);
/// ```
#[must_use]
pub fn approximation_ratio(expected_value: f64, c_min: f64) -> f64 {
    if c_min == 0.0 {
        return if expected_value == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        };
    }
    expected_value / c_min
}

/// Fidelity improvement of FrozenQubits over the baseline:
/// `ARG_baseline / ARG_fq` (the "8.73× on average" statistic). Degenerate
/// zero gaps map to 1 (no improvement measurable).
#[must_use]
pub fn improvement_factor(arg_baseline: f64, arg_fq: f64) -> f64 {
    if arg_fq <= 0.0 {
        if arg_baseline <= 0.0 {
            return 1.0;
        }
        return f64::INFINITY;
    }
    arg_baseline / arg_fq
}

/// Geometric mean, the paper's cross-machine aggregate (Fig. 13 "GMEAN").
///
/// Non-positive entries are clamped to a tiny positive floor so a single
/// perfect (zero-gap) instance does not zero the aggregate.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn gmean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "gmean of an empty slice");
    let log_sum: f64 = values.iter().map(|&v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_basics() {
        assert_eq!(arg(-4.0, -4.0), 0.0);
        assert_eq!(arg(-4.0, -2.0), 50.0);
        assert_eq!(arg(-4.0, 0.0), 100.0);
        // Sign of the deviation does not matter (absolute value).
        assert_eq!(arg(-4.0, -6.0), 50.0);
        assert_eq!(arg(0.0, 1.0), f64::INFINITY);
        assert_eq!(arg(0.0, 0.0), 0.0);
    }

    #[test]
    fn ar_basics() {
        assert_eq!(approximation_ratio(-10.0, -10.0), 1.0);
        assert_eq!(approximation_ratio(0.0, -10.0), 0.0);
        assert!(approximation_ratio(5.0, -10.0) < 0.0);
        assert_eq!(approximation_ratio(0.0, 0.0), 1.0);
    }

    #[test]
    fn improvement_factors() {
        assert_eq!(improvement_factor(50.0, 10.0), 5.0);
        assert_eq!(improvement_factor(0.0, 0.0), 1.0);
        assert_eq!(improvement_factor(10.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn gmean_matches_hand_value() {
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        // A zero entry is floored, not propagated.
        assert!(gmean(&[0.0, 4.0]) > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn gmean_empty_panics() {
        let _ = gmean(&[]);
    }
}
