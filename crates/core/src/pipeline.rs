//! The end-to-end FrozenQubits pipeline (Fig. 4): optimize parameters on
//! the ideal simulator, compile, estimate hardware expectation values, and
//! compare the baseline against freezing `m` hotspots.
//!
//! The pipeline's entry points are the job API in [`crate::api`]:
//! [`JobBuilder`](crate::api::JobBuilder) → [`JobSpec`](crate::api::JobSpec)
//! → [`JobResult`](crate::api::JobResult), executed over the two-phase
//! plan/execute core (one shared template per distinct sub-circuit shape,
//! branches fanned out by the configured executor). The free functions
//! [`run_baseline`], [`run_frozen`] and [`compare`] remain as deprecated
//! one-line wrappers over that API.

use fq_circuit::{build_qaoa_circuit, qaoa_cnot_count};
use fq_ising::IsingModel;
use fq_optim::{
    grid_axis, grid_scan_2d_coarse_to_fine_with, grid_scan_2d_rows, grid_scan_2d_rows_par,
    nelder_mead, CoarseToFineScan, NelderMeadOptions,
};
use fq_sim::analytic::{expectation_from_terms_p1, BetaTrig, P1Row, PreparedP1};
use fq_sim::{
    ising_expectation_from_terms, log_eps, noisy_expectation_lightcone, subsample_couplings,
};
use fq_transpile::{compile, Compiled, Device};
use serde::{Deserialize, Serialize};

use crate::api::ErrorModel;
use crate::executor::BranchOutcome;
use crate::plan::ExecutionPlan;
use crate::{metrics::arg, FqError, FrozenQubitsConfig, QosTier};

/// The widest model multi-layer (`p ≥ 2`) parameter optimization will
/// exactly simulate. Shared by the run-time check in
/// [`optimize_parameters_multilayer`] and the build-time check in
/// [`JobBuilder::build`](crate::api::JobBuilder::build) so the two can
/// never drift apart. (Kept below `fq_sim::MAX_STATEVECTOR_QUBITS` for
/// optimizer wall-clock, not statevector memory.)
pub(crate) const MAX_EXACT_OPT_QUBITS: usize = 20;

/// Circuit-level cost metrics of one executed (compiled) circuit.
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct CircuitMetrics {
    /// Pre-compilation CNOTs (`2·|J|·p`).
    pub logical_cnots: usize,
    /// Post-compilation CNOTs, SWAPs included at cost 3.
    pub compiled_cnots: usize,
    /// Router-inserted SWAPs.
    pub swap_count: usize,
    /// Post-compilation depth.
    pub depth: usize,
    /// Scheduled duration in nanoseconds.
    pub duration_ns: f64,
}

/// Summary of one scheme (baseline, or FrozenQubits at some `m`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Human-readable label ("baseline", "FQ(m=2)", …).
    pub label: String,
    /// Qubits per executed circuit (`N − m`).
    pub circuit_qubits: usize,
    /// Number of circuits executed (the quantum cost; `2^{m−1}` under
    /// pruning).
    pub circuits_executed: u64,
    /// Mean circuit metrics over the executed circuits.
    pub metrics: CircuitMetrics,
    /// Ideal expectation value at the optimized parameters, aggregated
    /// over the `2^m` sub-spaces.
    pub ev_ideal: f64,
    /// Modelled hardware expectation value, aggregated likewise.
    pub ev_noisy: f64,
    /// Approximation Ratio Gap (Eq. 4); lower is better.
    pub arg: f64,
    /// Mean log-EPS over executed circuits (§6.3).
    pub log_eps: f64,
    /// Optimized `(γ, β)` of the first executed circuit.
    pub params: (f64, f64),
}

/// A baseline-vs-FrozenQubits comparison on one problem instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// The standard-QAOA baseline.
    pub baseline: RunSummary,
    /// The FrozenQubits run.
    pub frozen: RunSummary,
    /// Which qubits were frozen, in freeze order.
    pub frozen_qubits: Vec<usize>,
    /// `ARG_baseline / ARG_fq` (the paper's headline improvement factor).
    pub improvement: f64,
}

/// Everything known about one executed sub-problem.
#[derive(Clone, Debug, PartialEq)]
pub struct ProblemExecution {
    /// The (sub-)model that was executed.
    pub model: IsingModel,
    /// Optimized first-layer `(γ_1, β_1)` (see
    /// [`ProblemExecution::gammas`] for all layers).
    pub params: (f64, f64),
    /// All optimized γ parameters (one per layer).
    pub gammas: Vec<f64>,
    /// All optimized β parameters (one per layer).
    pub betas: Vec<f64>,
    /// Ideal expectation at the optimized parameters.
    pub ev_ideal: f64,
    /// Modelled noisy expectation at the same parameters.
    pub ev_noisy: f64,
    /// Log-EPS of the compiled circuit.
    pub log_eps: f64,
    /// The compiled artifact.
    pub compiled: Compiled,
}

/// Optimizes `(γ, β)` for one model by a coarse grid scan refined with
/// Nelder–Mead, minimizing the **ideal** p = 1 expectation — matching the
/// paper's methodology of determining optimal parameters from simulation
/// (§4.2).
///
/// # Errors
///
/// Propagates analytic-expectation errors (none for well-formed models).
pub fn optimize_parameters(
    model: &IsingModel,
    grid_resolution: usize,
) -> Result<(f64, f64), FqError> {
    optimize_parameters_prepared(&PreparedP1::new(model), grid_resolution)
}

/// Estimated scan flops above which [`optimize_parameters_prepared`] fans
/// γ rows across threads. Below it (small sub-models, coarse grids) the
/// sequential path wins — and batch-engine workers, which already
/// parallelize across branches, stay single-threaded inside each branch
/// instead of oversubscribing the machine.
const PAR_SCAN_MIN_FLOPS: usize = 2_000_000;

/// [`optimize_parameters`] over an existing [`PreparedP1`] — callers that
/// also need per-term expectations at the optimum (the p = 1 executor
/// paths) gather the model structure **once** and reuse it across the
/// grid scan, the Nelder–Mead refinement, and the final
/// [`PreparedP1::terms_at`] evaluation.
///
/// The scan runs through the 8-wide lane kernel
/// ([`fq_sim::analytic::P1Row::eval_lanes`]) with the β-axis trigonometry
/// precomputed once for all rows, and fans γ rows across
/// [`auto_threads`](crate::auto_threads) threads when the model/grid is
/// large enough to pay for them — all bit-identical to the scalar
/// sequential scan (pinned by tests).
///
/// # Errors
///
/// Propagates analytic-expectation errors (none for well-formed models).
pub fn optimize_parameters_prepared(
    prepared: &PreparedP1<'_>,
    grid_resolution: usize,
) -> Result<(f64, f64), FqError> {
    let model = prepared.model();
    if model.num_couplings() == 0 && model.has_zero_linear_terms() {
        // Constant objective; any angles do.
        return Ok((0.0, 0.0));
    }
    let half_pi = std::f64::consts::FRAC_PI_2;
    let quarter_pi = std::f64::consts::FRAC_PI_4;
    let resolution = grid_resolution.max(5);
    // The β axis is shared by every γ row: its sines are computed once
    // per scan, not once per row (let alone per point).
    let trig = BetaTrig::new(&grid_axis(-quarter_pi, quarter_pi, resolution));
    let threads = if prepared.row_flops(resolution).saturating_mul(resolution) >= PAR_SCAN_MIN_FLOPS
    {
        crate::auto_threads()
    } else {
        1
    };
    let scan = grid_scan_2d_rows_par(
        threads,
        |g| prepared.row(g),
        |row, _betas, out| row.eval_lanes::<8>(&trig, out),
        (-half_pi, half_pi),
        (-quarter_pi, quarter_pi),
        resolution,
    );
    let (g0, b0) = scan.best_params();
    let polished = nelder_mead(
        |p: &[f64]| prepared.at(p[0], p[1]),
        &[g0, b0],
        &NelderMeadOptions {
            max_evaluations: 400,
            initial_step: 0.05,
            ..NelderMeadOptions::default()
        },
    );
    Ok((polished.best_params[0], polished.best_params[1]))
}

/// Coupling-count floor below which the `fast` tier's term subsample is
/// a no-op: tiny models gain nothing from sparsification, and keeping
/// them whole keeps the located angles trustworthy.
const FAST_MIN_COUPLINGS: usize = 64;

/// Drives both passes of a coarse-to-fine scan through the 8-wide lane
/// kernels, with the β-axis trigonometry computed once per pass. Runs
/// sequentially — the tier scans are small, and single-threading makes
/// the approximate tiers trivially byte-identical across thread counts.
fn coarse_to_fine_rows<'p>(
    row_for: impl Fn(f64) -> P1Row<'p>,
    coarse_resolution: usize,
    refine_resolution: usize,
) -> CoarseToFineScan {
    let half_pi = std::f64::consts::FRAC_PI_2;
    let quarter_pi = std::f64::consts::FRAC_PI_4;
    grid_scan_2d_coarse_to_fine_with(
        |gamma_range, beta_range, resolution| {
            let trig = BetaTrig::new(&grid_axis(beta_range.0, beta_range.1, resolution));
            grid_scan_2d_rows(
                &row_for,
                |row, _betas, out| row.eval_lanes::<8>(&trig, out),
                gamma_range,
                beta_range,
                resolution,
            )
        },
        (-half_pi, half_pi),
        (-quarter_pi, quarter_pi),
        coarse_resolution,
        refine_resolution,
    )
}

/// The approximate-tier counterpart of [`optimize_parameters_prepared`]:
/// the [`ErrorModel`]'s knobs pick the technique, so the knobs a result
/// reports are by construction the knobs that ran.
///
/// * `balanced` — coarse-to-fine lane-kernel scan
///   (`scan_resolution² + refine_resolution²` points) followed by a
///   budget-capped, early-exit Nelder–Mead polish with exact
///   trigonometry;
/// * `fast` — a seeded coupling subsample
///   ([`fq_sim::subsample_couplings`], no-op below
///   [`FAST_MIN_COUPLINGS`]) scanned through the polynomial-trig rows
///   ([`fq_sim::analytic::PreparedP1::row_poly`]), no simplex polish.
///
/// Both run sequentially and are pure functions of `(model, em, seed)`,
/// so approximate results are byte-identical across processes and thread
/// counts. The caller evaluates the located angles **exactly** on the
/// full model afterwards.
///
/// # Errors
///
/// Propagates analytic-expectation errors (none for well-formed models).
pub(crate) fn optimize_parameters_tiered(
    prepared: &PreparedP1<'_>,
    em: &ErrorModel,
    grid_resolution: usize,
    seed: u64,
) -> Result<(f64, f64), FqError> {
    let model = prepared.model();
    if model.num_couplings() == 0 && model.has_zero_linear_terms() {
        // Constant objective; any angles do.
        return Ok((0.0, 0.0));
    }
    match em.tier {
        // Defensive only: `ErrorModel::for_tier` never builds an exact
        // error model, so tier dispatch cannot reach this arm.
        QosTier::Exact => optimize_parameters_prepared(prepared, grid_resolution),
        QosTier::Balanced => {
            let scan = coarse_to_fine_rows(
                |g| prepared.row(g),
                em.scan_resolution,
                em.refine_resolution,
            );
            let (g0, b0) = scan.best_params;
            if em.optimizer_evals == 0 {
                return Ok((g0, b0));
            }
            let polished = nelder_mead(
                |p: &[f64]| prepared.at(p[0], p[1]),
                &[g0, b0],
                &NelderMeadOptions {
                    max_evaluations: em.optimizer_evals,
                    value_tolerance: 1e-8,
                    initial_step: 0.05,
                },
            );
            Ok((polished.best_params[0], polished.best_params[1]))
        }
        QosTier::Fast => {
            let sub = subsample_couplings(model, em.term_sample_keep, FAST_MIN_COUPLINGS, seed);
            let scan = if sub.num_couplings() == model.num_couplings() {
                // The subsample kept everything — reuse the caller's
                // preparation instead of rebuilding it.
                coarse_to_fine_rows(
                    |g| prepared.row_poly(g),
                    em.scan_resolution,
                    em.refine_resolution,
                )
            } else {
                let sub_prep = PreparedP1::new(&sub);
                coarse_to_fine_rows(
                    |g| sub_prep.row_poly(g),
                    em.scan_resolution,
                    em.refine_resolution,
                )
            };
            Ok(scan.best_params)
        }
    }
}

/// Per-branch polish of the plan-shared tier angles: a budget-capped
/// Nelder–Mead descent on **this branch's** exact `p = 1` landscape,
/// started from the representative branch's optimum. `balanced` runs it
/// (its `optimizer_evals` budget); `fast` sets the budget to zero and
/// keeps the shared angles as-is. This is what keeps parameter sharing
/// inside `balanced`'s tight deviation bound: siblings share the coupling
/// structure, so the shared seed lands in the right basin, and the polish
/// closes the branch-specific gap the differing linear terms open. Pure
/// function of `(prepared, em, seed angles)` — bit-deterministic.
pub(crate) fn polish_parameters_tiered(
    prepared: &PreparedP1<'_>,
    em: &ErrorModel,
    gamma: f64,
    beta: f64,
) -> (f64, f64) {
    if em.optimizer_evals == 0 {
        return (gamma, beta);
    }
    let polished = nelder_mead(
        |p: &[f64]| prepared.at(p[0], p[1]),
        &[gamma, beta],
        &NelderMeadOptions {
            max_evaluations: em.optimizer_evals,
            value_tolerance: 1e-8,
            initial_step: 0.05,
        },
    );
    (polished.best_params[0], polished.best_params[1])
}

/// Optimizes the full `(γ_1..γ_p, β_1..β_p)` vector for a `p`-layer QAOA
/// circuit. `p = 1` uses the closed-form expectation (any width); `p ≥ 2`
/// optimizes the exact statevector expectation (width ≤ 20) seeded from
/// the `p = 1` optimum with a linear ramp — the standard multi-layer
/// warm start.
///
/// # Errors
///
/// Returns [`FqError::InvalidConfig`] for `p = 0` or for `p ≥ 2`
/// on models wider than 20 variables.
pub fn optimize_parameters_multilayer(
    model: &IsingModel,
    p: usize,
    grid_resolution: usize,
) -> Result<(Vec<f64>, Vec<f64>), FqError> {
    if p == 0 {
        return Err(FqError::InvalidConfig("p must be at least 1".into()));
    }
    let (g1, b1) = optimize_parameters(model, grid_resolution)?;
    if p == 1 {
        return Ok((vec![g1], vec![b1]));
    }
    multilayer_from_warm_start(model, p, g1, b1, 800)
}

/// The approximate-tier counterpart of
/// [`optimize_parameters_multilayer`]: the first-layer warm start comes
/// from [`optimize_parameters_tiered`], and the statevector Nelder–Mead
/// runs on a reduced evaluation budget (its cost dominates `p ≥ 2`
/// branches, so the budget **is** the tier's speed knob there).
///
/// # Errors
///
/// Returns [`FqError::InvalidConfig`] for `p = 0` or for `p ≥ 2` on
/// models wider than the exact-simulation limit.
pub(crate) fn optimize_parameters_multilayer_tiered(
    model: &IsingModel,
    p: usize,
    grid_resolution: usize,
    em: &ErrorModel,
    seed: u64,
) -> Result<(Vec<f64>, Vec<f64>), FqError> {
    if p == 0 {
        return Err(FqError::InvalidConfig("p must be at least 1".into()));
    }
    let prepared = PreparedP1::new(model);
    let (g1, b1) = optimize_parameters_tiered(&prepared, em, grid_resolution, seed)?;
    if p == 1 {
        return Ok((vec![g1], vec![b1]));
    }
    let budget = match em.tier {
        QosTier::Balanced => 200,
        QosTier::Fast => 100,
        QosTier::Exact => 800,
    };
    multilayer_from_warm_start(model, p, g1, b1, budget)
}

/// The shared `p ≥ 2` tail: INTERP-style warm start from the first-layer
/// optimum, then statevector Nelder–Mead capped at `max_evaluations`.
fn multilayer_from_warm_start(
    model: &IsingModel,
    p: usize,
    g1: f64,
    b1: f64,
    max_evaluations: usize,
) -> Result<(Vec<f64>, Vec<f64>), FqError> {
    if model.num_vars() > MAX_EXACT_OPT_QUBITS {
        return Err(FqError::InvalidConfig(format!(
            "multi-layer optimization simulates the exact state; {} variables exceed the {MAX_EXACT_OPT_QUBITS}-qubit limit",
            model.num_vars()
        )));
    }
    // Warm start: ramp γ up and β down across layers (INTERP-style).
    let mut x0 = Vec::with_capacity(2 * p);
    for l in 0..p {
        let t = (l as f64 + 1.0) / p as f64;
        x0.push(g1 * t);
    }
    for l in 0..p {
        let t = (l as f64 + 1.0) / p as f64;
        x0.push(b1 * (1.0 - t) + b1 * 0.25 * t);
    }
    let result = nelder_mead(
        |x: &[f64]| {
            let (g, b) = x.split_at(p);
            fq_sim::qaoa_expectation_sv(model, g, b).expect("valid model within width limit")
        },
        &x0,
        &NelderMeadOptions {
            max_evaluations,
            initial_step: 0.08,
            ..NelderMeadOptions::default()
        },
    );
    let (g, b) = result.best_params.split_at(p);
    Ok((g.to_vec(), b.to_vec()))
}

/// Runs one model through the full single-circuit pipeline: parameter
/// optimization, compilation, fidelity modelling and EPS. Supports any
/// `config.layers` (`p ≥ 2` needs ≤ 20 variables; see
/// [`optimize_parameters_multilayer`]).
///
/// # Errors
///
/// Propagates circuit, transpile and simulation errors.
pub fn execute_problem(
    model: &IsingModel,
    device: &Device,
    config: &FrozenQubitsConfig,
) -> Result<ProblemExecution, FqError> {
    let p = config.layers;
    // For p = 1 the model structure is gathered once and reused across the
    // optimizer (scan + refinement) and the final term evaluation.
    let prepared = (p == 1).then(|| PreparedP1::new(model));
    let (gammas, betas) = match &prepared {
        Some(prep) => {
            let (g, b) = optimize_parameters_prepared(prep, config.param_grid)?;
            (vec![g], vec![b])
        }
        None => optimize_parameters_multilayer(model, p, config.param_grid)?,
    };
    let qc = build_qaoa_circuit(model, p)?;
    let compiled = compile(&qc, device, config.compile)?;
    // One pass over the terms; the scalar expectation is assembled from
    // them bit-identically instead of a second full evaluation.
    let (ev_ideal, z, zz) = if let Some(prep) = &prepared {
        let (z, zz) = prep.terms_at(gammas[0], betas[0]);
        let ev = expectation_from_terms_p1(model, &z, &zz)?;
        (ev, z, zz)
    } else {
        let bound = qc.bind(&gammas, &betas)?;
        let sv = fq_sim::run_circuit(&bound)?;
        let (z, zz) = sv.term_expectations(model)?;
        let ev = ising_expectation_from_terms(model, &z, &zz)?;
        (ev, z, zz)
    };
    let ev_noisy = noisy_expectation_lightcone(model, &z, &zz, &compiled, device)?;
    let eps_log = log_eps(&compiled, device);
    Ok(ProblemExecution {
        model: model.clone(),
        params: (gammas[0], betas[0]),
        gammas,
        betas,
        ev_ideal,
        ev_noisy,
        log_eps: eps_log,
        compiled,
    })
}

pub(crate) fn metrics_of(model: &IsingModel, layers: usize, compiled: &Compiled) -> CircuitMetrics {
    CircuitMetrics {
        logical_cnots: qaoa_cnot_count(model, layers),
        compiled_cnots: compiled.stats.cnot_count,
        swap_count: compiled.swap_count,
        depth: compiled.stats.depth,
        duration_ns: compiled.schedule.duration_ns,
    }
}

impl CircuitMetrics {
    /// The weighted mean over per-branch metrics, weighting each branch by
    /// its sub-space coverage exactly like the expectation values, with
    /// integer fields rounded to nearest (not truncated).
    #[must_use]
    pub fn weighted_mean(items: &[(CircuitMetrics, f64)]) -> CircuitMetrics {
        let mut w_sum = 0.0f64;
        let mut acc = [0.0f64; 5];
        for (m, w) in items {
            w_sum += w;
            acc[0] += w * m.logical_cnots as f64;
            acc[1] += w * m.compiled_cnots as f64;
            acc[2] += w * m.swap_count as f64;
            acc[3] += w * m.depth as f64;
            acc[4] += w * m.duration_ns;
        }
        if w_sum <= 0.0 {
            return CircuitMetrics::default();
        }
        let round = |v: f64| (v / w_sum).round() as usize;
        CircuitMetrics {
            logical_cnots: round(acc[0]),
            compiled_cnots: round(acc[1]),
            swap_count: round(acc[2]),
            depth: round(acc[3]),
            duration_ns: acc[4] / w_sum,
        }
    }
}

/// Aggregates branch outcomes into a [`RunSummary`], weighting **every**
/// per-branch statistic — expectations, metrics and log-EPS alike — by the
/// branch's sub-space coverage.
pub(crate) fn summarize_outcomes(
    plan: &ExecutionPlan,
    outcomes: &[BranchOutcome],
    label: String,
) -> RunSummary {
    let mut w_sum = 0.0f64;
    let mut ev_ideal_acc = 0.0f64;
    let mut ev_noisy_acc = 0.0f64;
    let mut log_eps_acc = 0.0f64;
    let mut weighted_metrics = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        w_sum += o.weight;
        ev_ideal_acc += o.weight * o.ev_ideal;
        ev_noisy_acc += o.weight * o.ev_noisy;
        log_eps_acc += o.weight * o.log_eps;
        weighted_metrics.push((o.metrics, o.weight));
    }
    let w_sum = w_sum.max(f64::MIN_POSITIVE);
    let ev_ideal = ev_ideal_acc / w_sum;
    let ev_noisy = ev_noisy_acc / w_sum;
    RunSummary {
        label,
        circuit_qubits: plan.branch(0).problem.model().num_vars(),
        circuits_executed: plan.quantum_cost(),
        metrics: CircuitMetrics::weighted_mean(&weighted_metrics),
        ev_ideal,
        ev_noisy,
        arg: arg(ev_ideal, ev_noisy),
        log_eps: log_eps_acc / w_sum,
        params: outcomes.first().map_or((0.0, 0.0), |o| o.params),
    }
}

/// Runs the standard-QAOA baseline on the full problem — a single-branch
/// plan (`m = 0`) through the plan/execute core.
///
/// # Errors
///
/// Propagates pipeline errors.
#[deprecated(
    since = "0.2.0",
    note = "use `api::JobBuilder` with `.baseline()` (this is a thin wrapper over it)"
)]
pub fn run_baseline(
    model: &IsingModel,
    device: &Device,
    config: &FrozenQubitsConfig,
) -> Result<RunSummary, FqError> {
    crate::api::Job::from_parts(model, device, config, crate::api::JobKind::Baseline)
        .run()?
        .into_baseline()
}

/// Runs FrozenQubits: plan (freeze `config.num_frozen` hotspots, compile
/// one template per distinct sub-circuit shape), execute every branch via
/// the configured [`Executor`](crate::Executor), and aggregate.
///
/// The aggregate statistics weight each executed branch by the number of
/// sub-spaces it covers (2 when its symmetric partner was pruned), i.e.
/// the expectation of the uniform mixture over all `2^m` sub-space
/// distributions.
///
/// # Errors
///
/// Propagates hotspot-selection, freezing and pipeline errors.
#[deprecated(
    since = "0.2.0",
    note = "use `api::JobBuilder` with `.frozen()` (this is a thin wrapper over it)"
)]
pub fn run_frozen(
    model: &IsingModel,
    device: &Device,
    config: &FrozenQubitsConfig,
) -> Result<(RunSummary, Vec<usize>), FqError> {
    crate::api::Job::from_parts(model, device, config, crate::api::JobKind::Frozen)
        .run()?
        .into_frozen()
}

/// Runs baseline and FrozenQubits side by side and reports the
/// improvement factor.
///
/// # Errors
///
/// Propagates pipeline errors.
///
/// # Example
///
/// ```
/// use frozenqubits::api::{DeviceSpec, JobBuilder};
///
/// let spec = JobBuilder::new()
///     .barabasi_albert(10, 1, 3)
///     .device(DeviceSpec::IbmMontreal)
///     .compare()
///     .build()?;
/// let report = spec.run()?.into_compare()?;
/// // Freezing the hotspot must strictly reduce the executed CNOT count.
/// assert!(report.frozen.metrics.compiled_cnots < report.baseline.metrics.compiled_cnots);
/// # Ok::<(), frozenqubits::FqError>(())
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use `api::JobBuilder` with `.compare()` (this is a thin wrapper over it)"
)]
pub fn compare(
    model: &IsingModel,
    device: &Device,
    config: &FrozenQubitsConfig,
) -> Result<Report, FqError> {
    crate::api::Job::from_parts(model, device, config, crate::api::JobKind::Compare)
        .run()?
        .into_compare()
}

#[cfg(test)]
#[allow(deprecated)] // the wrappers stay covered until removal
mod tests {
    use super::*;
    use fq_graphs::{gen, to_ising_pm1};
    use fq_sim::analytic::expectation_p1;

    fn ba_model(n: usize, seed: u64) -> IsingModel {
        to_ising_pm1(&gen::barabasi_albert(n, 1, seed).unwrap(), seed)
    }

    #[test]
    fn optimized_parameters_beat_zero() {
        let m = ba_model(10, 1);
        let (g, b) = optimize_parameters(&m, 15).unwrap();
        let opt = expectation_p1(&m, g, b).unwrap();
        let zero = expectation_p1(&m, 0.0, 0.0).unwrap();
        assert!(opt < zero - 0.1, "optimized {opt} vs uniform {zero}");
    }

    #[test]
    fn baseline_arg_is_positive_on_noisy_hardware() {
        let m = ba_model(10, 2);
        let s = run_baseline(&m, &Device::ibm_montreal(), &FrozenQubitsConfig::default()).unwrap();
        assert!(s.arg > 0.0 && s.arg.is_finite());
        assert!(s.ev_ideal < 0.0, "optimal EV must be negative");
        assert!(s.ev_noisy > s.ev_ideal, "noise pulls EV toward zero");
    }

    #[test]
    fn freezing_reduces_cnots_and_arg() {
        let m = ba_model(12, 3);
        let report = compare(&m, &Device::ibm_montreal(), &FrozenQubitsConfig::default()).unwrap();
        assert!(
            report.frozen.metrics.compiled_cnots < report.baseline.metrics.compiled_cnots,
            "FQ {} vs baseline {}",
            report.frozen.metrics.compiled_cnots,
            report.baseline.metrics.compiled_cnots
        );
        assert!(
            report.frozen.arg < report.baseline.arg,
            "FQ arg {} vs baseline {}",
            report.frozen.arg,
            report.baseline.arg
        );
        assert!(report.improvement > 1.0);
    }

    #[test]
    fn pruning_keeps_quantum_cost_at_one_for_m1() {
        let m = ba_model(10, 4);
        let (s, hotspots) =
            run_frozen(&m, &Device::ibm_montreal(), &FrozenQubitsConfig::default()).unwrap();
        assert_eq!(
            s.circuits_executed, 1,
            "m=1 with pruning executes one circuit"
        );
        assert_eq!(s.circuit_qubits, 9);
        assert_eq!(hotspots.len(), 1);
    }

    #[test]
    fn m2_doubles_quantum_cost() {
        let m = ba_model(10, 5);
        let cfg = FrozenQubitsConfig::with_frozen(2);
        let (s, _) = run_frozen(&m, &Device::ibm_montreal(), &cfg).unwrap();
        assert_eq!(s.circuits_executed, 2);
    }

    #[test]
    fn two_layer_qaoa_beats_one_layer_ideally() {
        // More layers can only improve the variationally optimal EV.
        let m = ba_model(8, 7);
        let device = Device::ibm_montreal();
        let p1 = execute_problem(&m, &device, &FrozenQubitsConfig::default()).unwrap();
        let p2_cfg = FrozenQubitsConfig {
            layers: 2,
            ..FrozenQubitsConfig::default()
        };
        let p2 = execute_problem(&m, &device, &p2_cfg).unwrap();
        assert_eq!(p2.gammas.len(), 2);
        assert!(
            p2.ev_ideal <= p1.ev_ideal + 1e-6,
            "p=2 ideal {} must not be worse than p=1 {}",
            p2.ev_ideal,
            p1.ev_ideal
        );
        // But the deeper circuit is noisier per layer: more CNOTs.
        assert!(p2.compiled.stats.cnot_count > p1.compiled.stats.cnot_count);
    }

    #[test]
    fn multilayer_rejects_wide_models() {
        let m = ba_model(24, 8);
        assert!(matches!(
            optimize_parameters_multilayer(&m, 2, 9),
            Err(FqError::InvalidConfig(_))
        ));
        assert!(matches!(
            optimize_parameters_multilayer(&m, 0, 9),
            Err(FqError::InvalidConfig(_))
        ));
    }

    #[test]
    fn frozen_ideal_ev_is_at_least_as_good_as_global_optimum_bound() {
        // Sanity: each sub-space optimal EV cannot beat the global minimum.
        let m = ba_model(8, 6);
        let exact = fq_ising::solve::exact_solve(&m).unwrap();
        let (s, _) =
            run_frozen(&m, &Device::ibm_montreal(), &FrozenQubitsConfig::default()).unwrap();
        assert!(s.ev_ideal >= exact.energy - 1e-9);
    }
}
