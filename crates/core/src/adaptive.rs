//! Choosing how many qubits to freeze (§3.4): the fidelity–cost trade-off.
//!
//! Freezing more qubits drops more CNOTs but costs exponentially more
//! circuits. The paper observes that for power-law graphs the marginal
//! CNOT savings collapse after the few true hotspots, and that cheap
//! circuit properties (CNOT count, depth) track the fidelity trend
//! accurately (Fig. 9b) — so the knee can be found **without** running
//! anything quantum. [`suggest_num_frozen`] implements exactly that:
//! follow the hotspot ordering, accumulate dropped edges, and stop when
//! the marginal relative CNOT reduction per extra frozen qubit falls below
//! a threshold or the quantum budget is exhausted.

use fq_ising::IsingModel;
use fq_transpile::Device;
use serde::{Deserialize, Serialize};

use crate::plan::{plan_execution, ExecutionPlan};
use crate::{select_hotspots, FqError, FrozenQubitsConfig, HotspotStrategy};

/// The outcome of the §3.4 trade-off analysis.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FreezeRecommendation {
    /// Recommended number of qubits to freeze.
    pub m: usize,
    /// `relative_cnots[k]` = fraction of pre-compilation CNOTs that remain
    /// after freezing the top `k` hotspots (`k = 0..=max_considered`).
    pub relative_cnots: Vec<f64>,
    /// Quantum cost of the recommendation under symmetry pruning
    /// (`2^{m−1}` circuits, or 1 for `m ≤ 1`).
    pub quantum_cost: u64,
}

/// Options for [`suggest_num_frozen`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FreezeBudget {
    /// Maximum circuits the user is willing to run (the "quantum budget";
    /// §5.1.3 notes this is inherently user-specific).
    pub max_quantum_cost: u64,
    /// Minimum marginal relative-CNOT reduction an extra frozen qubit must
    /// deliver. The paper's knee ("saturates after freezing seven qubits")
    /// corresponds to marginal gains dipping below a few percent.
    pub min_marginal_gain: f64,
    /// Hard cap on `m` regardless of gains.
    pub max_frozen: usize,
}

impl Default for FreezeBudget {
    fn default() -> Self {
        FreezeBudget {
            max_quantum_cost: 2, // the paper's default design: m ≤ 2
            min_marginal_gain: 0.02,
            max_frozen: 10,
        }
    }
}

/// Recommends how many hotspots to freeze for `model` under `budget`,
/// using dropped-edge counting as the fidelity proxy of Fig. 9b.
///
/// # Errors
///
/// Propagates hotspot-selection errors; returns
/// [`FqError::InvalidConfig`] for a zero budget.
///
/// # Example
///
/// ```
/// use fq_graphs::{gen, to_ising_pm1};
/// use frozenqubits::{suggest_num_frozen, FreezeBudget};
///
/// let model = to_ising_pm1(&gen::barabasi_albert(64, 1, 3)?, 3);
/// let rec = suggest_num_frozen(&model, &FreezeBudget::default())?;
/// assert!(rec.m >= 1 && rec.m <= 2); // default budget caps at 2 circuits
/// // Freezing the top hotspot removes a sizable edge share on BA graphs.
/// assert!(rec.relative_cnots[1] < 0.95);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn suggest_num_frozen(
    model: &IsingModel,
    budget: &FreezeBudget,
) -> Result<FreezeRecommendation, FqError> {
    if budget.max_quantum_cost == 0 {
        return Err(FqError::InvalidConfig(
            "quantum budget must allow at least one circuit".into(),
        ));
    }
    let total_edges = model.num_couplings().max(1) as f64;
    let max_m = budget
        .max_frozen
        .min(model.num_vars().saturating_sub(1))
        .min(63);
    let order = select_hotspots(model, max_m, &HotspotStrategy::MaxDegree)?;

    // Cumulative edges dropped by freezing the top-k prefix.
    let mut frozen = std::collections::BTreeSet::new();
    let mut relative = Vec::with_capacity(max_m + 1);
    relative.push(1.0);
    for &q in &order {
        frozen.insert(q);
        let dropped = model
            .couplings()
            .filter(|((i, j), _)| frozen.contains(i) || frozen.contains(j))
            .count();
        relative.push((total_edges - dropped as f64) / total_edges);
    }

    // Walk up while the marginal gain justifies doubling the cost and the
    // budget allows it.
    let cost_of = |m: usize| -> u64 {
        if m <= 1 {
            1
        } else {
            1u64 << (m - 1)
        }
    };
    let mut m = 0usize;
    for k in 1..=max_m {
        if cost_of(k) > budget.max_quantum_cost {
            break;
        }
        let gain = relative[k - 1] - relative[k];
        if k > 1 && gain < budget.min_marginal_gain {
            break;
        }
        m = k;
    }
    // Freezing at least one hotspot is free under pruning; never suggest 0
    // for a non-trivial symmetric model.
    if m == 0 && model.has_zero_linear_terms() && model.num_couplings() > 0 {
        m = 1;
    }

    Ok(FreezeRecommendation {
        m,
        relative_cnots: relative,
        quantum_cost: cost_of(m),
    })
}

/// Plans an execution with `m` chosen adaptively: runs the §3.4 trade-off
/// analysis under `budget`, overrides `config.num_frozen` with the
/// recommendation, and builds the [`ExecutionPlan`] — the "auto-`m`" entry
/// point of the plan/execute pipeline.
///
/// # Errors
///
/// Propagates the analysis and planning errors of [`suggest_num_frozen`]
/// and [`plan_execution`].
///
/// # Example
///
/// ```
/// use fq_graphs::{gen, to_ising_pm1};
/// use fq_transpile::Device;
/// use frozenqubits::{plan_with_budget, FreezeBudget, FrozenQubitsConfig};
///
/// let model = to_ising_pm1(&gen::barabasi_albert(20, 1, 3)?, 3);
/// let (plan, rec) = plan_with_budget(
///     &model,
///     &Device::ibm_montreal(),
///     &FrozenQubitsConfig::default(),
///     &FreezeBudget::default(),
/// )?;
/// assert_eq!(plan.quantum_cost(), rec.quantum_cost);
/// assert_eq!(plan.num_templates(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn plan_with_budget(
    model: &IsingModel,
    device: &Device,
    config: &FrozenQubitsConfig,
    budget: &FreezeBudget,
) -> Result<(ExecutionPlan, FreezeRecommendation), FqError> {
    let rec = suggest_num_frozen(model, budget)?;
    let cfg = FrozenQubitsConfig {
        num_frozen: rec.m,
        ..config.clone()
    };
    let plan = plan_execution(model, device, &cfg)?;
    Ok((plan, rec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_graphs::{gen, to_ising_pm1};

    fn ba(n: usize, d: usize, seed: u64) -> IsingModel {
        to_ising_pm1(&gen::barabasi_albert(n, d, seed).unwrap(), seed)
    }

    #[test]
    fn default_budget_recommends_paper_default() {
        let model = ba(48, 1, 1);
        let rec = suggest_num_frozen(&model, &FreezeBudget::default()).unwrap();
        assert!((1..=2).contains(&rec.m));
        assert!(rec.quantum_cost <= 2);
    }

    #[test]
    fn relative_cnots_is_monotone_nonincreasing() {
        let model = ba(64, 2, 2);
        let rec = suggest_num_frozen(
            &model,
            &FreezeBudget {
                max_frozen: 10,
                max_quantum_cost: 512,
                ..FreezeBudget::default()
            },
        )
        .unwrap();
        assert!(rec.relative_cnots.windows(2).all(|w| w[1] <= w[0] + 1e-12));
        assert_eq!(rec.relative_cnots[0], 1.0);
    }

    #[test]
    fn bigger_budget_freezes_more_on_powerlaw() {
        let model = ba(96, 1, 3);
        let small = suggest_num_frozen(&model, &FreezeBudget::default()).unwrap();
        let big = suggest_num_frozen(
            &model,
            &FreezeBudget {
                max_quantum_cost: 512,
                min_marginal_gain: 0.005,
                max_frozen: 10,
            },
        )
        .unwrap();
        assert!(big.m >= small.m);
    }

    #[test]
    fn saturation_stops_the_walk_before_budget() {
        // A star: after the hub, extra freezes gain one edge each out of
        // many — the knee should be right after the hub.
        let star = to_ising_pm1(&gen::star(40), 1);
        let rec = suggest_num_frozen(
            &star,
            &FreezeBudget {
                max_quantum_cost: 1 << 9,
                min_marginal_gain: 0.05,
                max_frozen: 10,
            },
        )
        .unwrap();
        assert_eq!(rec.m, 1, "the hub is the only worthwhile freeze");
        assert!(rec.relative_cnots[1] <= 1e-9, "hub removal empties a star");
    }

    #[test]
    fn symmetric_models_never_get_zero() {
        let model = ba(16, 3, 4); // dense: small marginal gains
        let rec = suggest_num_frozen(
            &model,
            &FreezeBudget {
                max_quantum_cost: 4,
                min_marginal_gain: 0.5,
                max_frozen: 10,
            },
        )
        .unwrap();
        assert_eq!(rec.m, 1, "pruning makes m=1 free, so always take it");
    }

    #[test]
    fn zero_budget_is_rejected() {
        let model = ba(8, 1, 5);
        assert!(suggest_num_frozen(
            &model,
            &FreezeBudget {
                max_quantum_cost: 0,
                ..FreezeBudget::default()
            }
        )
        .is_err());
    }
}
