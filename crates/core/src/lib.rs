//! **FrozenQubits**: boosting QAOA fidelity by skipping hotspot nodes —
//! a full Rust reproduction of the ASPLOS 2023 paper.
//!
//! Real-world problem graphs follow power-law degree distributions: a few
//! *hotspot* nodes carry a disproportionate share of the edges, and every
//! edge costs two error-prone CNOTs per QAOA layer (plus SWAP overhead on
//! sparse hardware). FrozenQubits substitutes the hotspot spins with their
//! two possible values, partitioning the state space into `2^m` smaller
//! sub-problems whose circuits are dramatically more reliable; spin-flip
//! symmetry lets it skip half of the sub-problems outright, and a
//! compile-once/edit-many template amortizes transpilation.
//!
//! The crate orchestrates the full workflow of Fig. 4 on the substrates in
//! the sibling crates (`fq-ising`, `fq-graphs`, `fq-circuit`,
//! `fq-transpile`, `fq-sim`, `fq-optim`):
//!
//! Execution follows a two-phase **plan/execute** architecture:
//! [`plan_execution`] freezes the hotspots, partitions the state space and
//! compiles **one** [`CompiledTemplate`] per distinct sub-circuit shape
//! (usually exactly one), and an [`Executor`] — sequential, or parallel
//! across all cores — instantiates every branch by angle-editing the
//! shared template. The entry points below are thin wrappers over that
//! core:
//!
//! * [`select_hotspots`] — which qubits to freeze (§3.5);
//! * [`partition_problem`] — `2^m` sub-problems with symmetry pruning
//!   (§3.3, §3.7.2);
//! * [`CompiledTemplate`] — compile-once/edit-many executables (§3.7.1);
//! * [`plan_execution`] / [`ExecutionPlan`] — phase 1: partition + shared
//!   templates; [`plan_with_budget`] picks `m` adaptively (§3.4);
//! * [`Executor`] / [`SequentialExecutor`] / [`ParallelExecutor`] — phase
//!   2: branch fan-out, bit-identical across backends;
//! * [`compare`] / [`run_baseline`] / [`run_frozen`] — the analytic
//!   fidelity pipeline behind the paper's ARG figures;
//! * [`solve_with_sampling`] — end-to-end noisy sampling with decoding and
//!   the final `min` (§3.6);
//! * [`metrics`] — ARG (Eq. 4), AR (Eq. 5), improvement factors, GMEAN;
//! * [`runtime`] — the end-to-end runtime model of Eq. 6.
//!
//! # Quickstart
//!
//! ```
//! use fq_graphs::{gen, to_ising_pm1};
//! use fq_transpile::Device;
//! use frozenqubits::{compare, FrozenQubitsConfig};
//!
//! // A 12-node power-law (Barabási–Albert) Max-Cut-style instance.
//! let graph = gen::barabasi_albert(12, 1, 7)?;
//! let model = to_ising_pm1(&graph, 7);
//!
//! let report = compare(&model, &Device::ibm_montreal(), &FrozenQubitsConfig::default())?;
//! assert!(report.improvement > 1.0, "freezing the hotspot improves fidelity");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod config;
mod error;
mod executor;
mod hotspot;
pub mod metrics;
mod partition;
mod pipeline;
mod plan;
pub mod runtime;
mod solve;
mod template;

pub use adaptive::{plan_with_budget, suggest_num_frozen, FreezeBudget, FreezeRecommendation};
pub use config::FrozenQubitsConfig;
pub use error::FrozenQubitsError;
pub use executor::{
    BranchOutcome, BranchSamples, Executor, ExecutorKind, ParallelExecutor, SequentialExecutor,
};
pub use hotspot::{edges_eliminated, select_hotspots, HotspotStrategy};
pub use partition::{partition_problem, Partition, SubproblemExec};
pub use pipeline::{
    compare, execute_problem, optimize_parameters, optimize_parameters_multilayer, run_baseline,
    run_frozen, CircuitMetrics, ProblemExecution, Report, RunSummary,
};
pub use plan::{plan_execution, plan_from_partition, ExecutionPlan, ShapeSignature};
pub use solve::{solve_with_sampling, SolveOutcome};
pub use template::CompiledTemplate;
