//! **FrozenQubits**: boosting QAOA fidelity by skipping hotspot nodes —
//! a full Rust reproduction of the ASPLOS 2023 paper.
//!
//! Real-world problem graphs follow power-law degree distributions: a few
//! *hotspot* nodes carry a disproportionate share of the edges, and every
//! edge costs two error-prone CNOTs per QAOA layer (plus SWAP overhead on
//! sparse hardware). FrozenQubits substitutes the hotspot spins with their
//! two possible values, partitioning the state space into `2^m` smaller
//! sub-problems whose circuits are dramatically more reliable; spin-flip
//! symmetry lets it skip half of the sub-problems outright, and a
//! compile-once/edit-many template amortizes transpilation.
//!
//! The crate orchestrates the full workflow of Fig. 4 on the substrates in
//! the sibling crates (`fq-ising`, `fq-graphs`, `fq-circuit`,
//! `fq-transpile`, `fq-sim`, `fq-optim`):
//!
//! Execution follows a two-phase **plan/execute** architecture:
//! [`plan_execution`] freezes the hotspots, partitions the state space and
//! compiles **one** [`CompiledTemplate`] per distinct sub-circuit shape
//! (usually exactly one), and an [`Executor`] — sequential, or parallel
//! across all cores — instantiates every branch by angle-editing the
//! shared template. The public front door over that core is the **job
//! API** in [`api`]:
//!
//! * [`api::JobBuilder`] → [`api::JobSpec`] → [`api::JobResult`] — typed,
//!   build-time-validated job descriptions with a pinned JSON wire form;
//! * [`api::Backend`] ([`api::SimBackend`], [`api::NoiseModelBackend`]) —
//!   the execution substrate, chosen per job instead of assumed;
//! * [`api::BatchRunner`] — many jobs, one [`TemplateCache`]: compile
//!   each distinct sub-circuit shape once per batch (cross-job §3.7.1);
//! * [`select_hotspots`] — which qubits to freeze (§3.5);
//! * [`partition_problem`] — `2^m` sub-problems with symmetry pruning
//!   (§3.3, §3.7.2);
//! * [`CompiledTemplate`] — compile-once/edit-many executables (§3.7.1);
//! * [`plan_execution`] / [`ExecutionPlan`] — phase 1: partition + shared
//!   templates; [`plan_with_budget`] picks `m` adaptively (§3.4);
//! * [`Executor`] / [`SequentialExecutor`] / [`ParallelExecutor`] — phase
//!   2: branch fan-out, bit-identical across backends;
//! * [`metrics`] — ARG (Eq. 4), AR (Eq. 5), improvement factors, GMEAN;
//! * [`runtime`] — the end-to-end runtime model of Eq. 6.
//!
//! Every error anywhere in the workspace converts into the single
//! [`FqError`] enum, so application code threads one `?`-able type.
//! The pre-API free functions (`run_baseline`, `run_frozen`, `compare`,
//! `solve_with_sampling`) remain as deprecated one-line wrappers.
//! The sibling `fq-serve` crate serves this exact API over HTTP/1.1 —
//! request and response bodies are the pinned [`api::JobSpec`] /
//! [`api::JobResult`] wire documents, byte for byte.
//!
//! # Quickstart
//!
//! ```
//! use frozenqubits::api::{DeviceSpec, JobBuilder};
//!
//! // A 12-node power-law (Barabási–Albert) Max-Cut-style instance,
//! // compared baseline-vs-frozen on the IBM-Montreal model.
//! let spec = JobBuilder::new()
//!     .barabasi_albert(12, 1, 7)
//!     .device(DeviceSpec::IbmMontreal)
//!     .compare()
//!     .build()?;
//! let report = spec.run()?.into_compare()?;
//! assert!(report.improvement > 1.0, "freezing the hotspot improves fidelity");
//! # Ok::<(), frozenqubits::FqError>(())
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the
// documented disjoint-write result buffer in `executor::disjoint`, which
// opts in explicitly with `#[allow(unsafe_code)]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
pub mod api;
mod config;
mod error;
mod executor;
mod hotspot;
pub mod metrics;
mod partition;
mod pipeline;
mod plan;
pub mod runtime;
mod solve;
mod store;
mod template;

pub use adaptive::{plan_with_budget, suggest_num_frozen, FreezeBudget, FreezeRecommendation};
pub use api::{
    Backend, BackendSpec, BatchRunner, DeviceSpec, ErrorModel, GraphWeighting, Job, JobBuilder,
    JobId, JobKind, JobResult, JobSpec, NoiseModelBackend, ProblemSpec, SimBackend,
};
pub use config::{FrozenQubitsConfig, QosTier};
pub use error::FqError;
#[allow(deprecated)]
pub use error::FrozenQubitsError;
pub use executor::{
    auto_threads, BranchOutcome, BranchSamples, Executor, ExecutorKind, NoiseEval,
    ParallelExecutor, SequentialExecutor,
};
pub use hotspot::{edges_eliminated, select_hotspots, HotspotStrategy};
pub use partition::{partition_problem, Partition, SubproblemExec};
#[allow(deprecated)]
pub use pipeline::{compare, run_baseline, run_frozen};
pub use pipeline::{
    execute_problem, optimize_parameters, optimize_parameters_multilayer,
    optimize_parameters_prepared, CircuitMetrics, ProblemExecution, Report, RunSummary,
};
pub use plan::{
    plan_execution, plan_execution_cached, plan_from_partition, plan_from_partition_cached,
    CacheStats, ExecutionPlan, ShapeSignature, TemplateCache,
};
#[allow(deprecated)]
pub use solve::solve_with_sampling;
pub use solve::SolveOutcome;
pub use store::{
    is_template_fingerprint, DiskStore, MemoryStore, StoreStats, TemplateArtifact,
    TemplateIndexEntry, TemplateKey, TemplateStore, TieredStore, TEMPLATE_WIRE_VERSION,
};
pub use template::CompiledTemplate;
