//! Tiered storage behind the template cache: compiled templates as
//! **portable artifacts**.
//!
//! PR 1 made a compiled template shareable across branches, PR 3 across
//! jobs, PR 4 across HTTP clients of one process. This module makes it
//! shareable across *processes*: a [`TemplateArtifact`] is a versioned,
//! fingerprint-addressed document (key + template, canonical JSON) that
//! can spill to disk and travel between shards, so restarts and sibling
//! workers start warm instead of recompiling every shape.
//!
//! The pieces compose:
//!
//! * [`TemplateStore`] — the storage seam the
//!   [`TemplateCache`](crate::TemplateCache) compiles through. The cache
//!   keeps the concurrency story (per-key once-compile slots, hit/miss
//!   accounting); stores keep bytes.
//! * [`MemoryStore`] — the in-process tier: sharded maps, optional LRU
//!   bound, exact eviction counters (the storage half of the pre-refactor
//!   `TemplateCache`).
//! * [`DiskStore`] — the spill tier: one `<fingerprint>.fqt.json` file
//!   per artifact, written temp-then-rename (atomic on POSIX renames), so
//!   readers never observe a half-written artifact. Corrupt, truncated or
//!   version-skewed files are treated as **misses, never errors** — the
//!   worst a bad cache file can cause is a recompile.
//! * [`TieredStore`] — memory over disk: write-through on insert (that is
//!   what makes a restart warm), promote on spill-tier hit, demote on LRU
//!   eviction.
//!
//! Fingerprints are stable FNV-1a hashes of everything that determines
//! the compiled artifact (sub-circuit shape, device identity and
//! calibration, layer count, compile options) — deliberately *not*
//! `DefaultHasher`, whose output Rust does not promise across versions;
//! an on-disk cache and a peer shard must agree on names across builds.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::RwLock;

use fq_transpile::{CompileOptions, Device};
use serde::json::Value;

use crate::api::wire::{compile_from_value, compile_to_value};
use crate::plan::ShapeSignature;
use crate::{CompiledTemplate, FqError};

/// Wire-format version of [`TemplateArtifact`] documents, bumped on
/// breaking changes; a version-skewed artifact is a cache miss, never an
/// error.
pub const TEMPLATE_WIRE_VERSION: u64 = 1;

/// File suffix of on-disk artifacts.
const ARTIFACT_SUFFIX: &str = ".fqt.json";

// --------------------------------------------------------------------
// Stable hashing
// --------------------------------------------------------------------

/// A stable 64-bit FNV-1a hasher. Template fingerprints name files on
/// disk and artifacts on the wire (and scenario-suite fingerprints name
/// corpus entries across runs), so they must not depend on
/// `DefaultHasher`'s unstable algorithm.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    fn write_f64(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// A stable fingerprint of every device property that layout, routing,
/// scheduling or the noise models read: topology, per-edge CNOT errors,
/// per-qubit readout errors and coherence times, and gate durations.
/// Two same-named but differently calibrated devices get different
/// fingerprints, so their templates can never collide — in memory, on
/// disk, or across shards.
pub(crate) fn device_fingerprint(device: &Device) -> u64 {
    let mut h = Fnv64::new();
    let n = device.num_qubits();
    h.write_usize(n);
    for &(a, b) in device.topology().edges() {
        h.write_usize(a);
        h.write_usize(b);
        h.write_f64(device.cnot_error(a, b));
    }
    for q in 0..n {
        h.write_f64(device.readout_error(q));
        h.write_f64(device.t1_us(q));
        h.write_f64(device.t2_us(q));
    }
    let durations = device.durations();
    h.write_f64(durations.single_ns);
    h.write_f64(durations.cx_ns);
    h.write_f64(durations.readout_ns);
    h.finish()
}

// --------------------------------------------------------------------
// TemplateKey
// --------------------------------------------------------------------

/// Everything that determines a compiled template: sub-circuit
/// [`ShapeSignature`], device identity (name **plus** the stable
/// topology/calibration fingerprint), QAOA layer count, and
/// [`CompileOptions`].
///
/// The key's [`TemplateKey::fingerprint`] is the artifact's address
/// everywhere outside the process: the spill-tier filename and the
/// `/v1/templates/{fingerprint}` HTTP path.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TemplateKey {
    shape: ShapeSignature,
    device: String,
    device_fingerprint: u64,
    layers: usize,
    options: CompileOptions,
}

impl TemplateKey {
    /// The key of `shape` compiled for `device` at `layers` QAOA layers
    /// under `options`.
    #[must_use]
    pub fn new(
        shape: ShapeSignature,
        device: &Device,
        layers: usize,
        options: CompileOptions,
    ) -> TemplateKey {
        TemplateKey {
            shape,
            device: device.name().to_string(),
            device_fingerprint: device_fingerprint(device),
            layers,
            options,
        }
    }

    /// The sub-circuit shape.
    #[must_use]
    pub fn shape(&self) -> &ShapeSignature {
        &self.shape
    }

    /// The device name the template was compiled for.
    #[must_use]
    pub fn device_name(&self) -> &str {
        &self.device
    }

    /// The QAOA layer count.
    #[must_use]
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// The compile options.
    #[must_use]
    pub fn options(&self) -> CompileOptions {
        self.options
    }

    /// The stable 16-hex-digit fingerprint addressing this key's artifact
    /// on disk and over HTTP. Equal keys always fingerprint equally,
    /// across processes, machines and Rust versions.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!("{:016x}", self.fingerprint_u64())
    }

    /// The raw fingerprint hash — allocation-free, for hot-path uses
    /// like shard selection.
    pub(crate) fn fingerprint_u64(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_usize(self.shape.num_vars());
        for &(i, j) in self.shape.couplings() {
            h.write_usize(i);
            h.write_usize(j);
        }
        h.write_usize(self.device.len());
        h.write(self.device.as_bytes());
        h.write_u64(self.device_fingerprint);
        h.write_usize(self.layers);
        // Exhaustive on purpose: a new LayoutStrategy variant must fail
        // to compile here until it gets a stable fingerprint byte.
        let layout_tag: u8 = match self.options.layout {
            fq_transpile::LayoutStrategy::Trivial => 0,
            fq_transpile::LayoutStrategy::NoiseAdaptive => 1,
        };
        h.write(&[layout_tag, u8::from(self.options.optimize)]);
        h.finish()
    }

    fn to_value(&self) -> Value {
        Value::object(vec![
            ("num_vars", Value::UInt(self.shape.num_vars() as u64)),
            (
                "couplings",
                Value::Array(
                    self.shape
                        .couplings()
                        .iter()
                        .map(|&(i, j)| {
                            Value::Array(vec![Value::UInt(i as u64), Value::UInt(j as u64)])
                        })
                        .collect(),
                ),
            ),
            ("device", Value::string(&self.device)),
            ("device_fingerprint", Value::UInt(self.device_fingerprint)),
            ("layers", Value::UInt(self.layers as u64)),
            ("compile", compile_to_value(self.options)),
        ])
    }

    fn from_value(v: &Value) -> Result<TemplateKey, FqError> {
        let couplings = v
            .field("couplings")?
            .as_array()?
            .iter()
            .map(|item| {
                let pair = item.as_array()?;
                if pair.len() != 2 {
                    return Err(serde::json::JsonError("couplings are [i, j] pairs".into()));
                }
                Ok((pair[0].as_usize()?, pair[1].as_usize()?))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TemplateKey {
            shape: ShapeSignature::from_parts(v.field("num_vars")?.as_usize()?, couplings),
            device: v.field("device")?.as_str()?.to_string(),
            device_fingerprint: v.field("device_fingerprint")?.as_u64()?,
            layers: v.field("layers")?.as_usize()?,
            options: compile_from_value(v.field("compile")?)?,
        })
    }
}

// --------------------------------------------------------------------
// TemplateArtifact
// --------------------------------------------------------------------

/// A compiled template plus its full key, in the canonical versioned
/// wire form — the unit of disk spill and shard-to-shard warm transfer.
///
/// The document embeds the fingerprint, the key and the template:
///
/// ```json
/// {"v":1,"fingerprint":"9f…","key":{…},"template":{…}}
/// ```
///
/// [`TemplateArtifact::from_json`] verifies the version, the embedded
/// fingerprint against the key, and the template's width against the
/// key's shape, so a corrupted or mismatched artifact is rejected as a
/// whole — a store treats that as a miss and recompiles.
#[derive(Clone, Debug, PartialEq)]
pub struct TemplateArtifact {
    key: TemplateKey,
    template: CompiledTemplate,
}

impl TemplateArtifact {
    /// Packages a template under its key.
    #[must_use]
    pub fn new(key: TemplateKey, template: CompiledTemplate) -> TemplateArtifact {
        TemplateArtifact { key, template }
    }

    /// The artifact's key.
    #[must_use]
    pub fn key(&self) -> &TemplateKey {
        &self.key
    }

    /// The compiled template.
    #[must_use]
    pub fn template(&self) -> &CompiledTemplate {
        &self.template
    }

    /// The key's stable fingerprint (the artifact's address).
    #[must_use]
    pub fn fingerprint(&self) -> String {
        self.key.fingerprint()
    }

    /// Serializes to the canonical versioned wire form.
    #[must_use]
    pub fn to_json(&self) -> String {
        Value::object(vec![
            ("v", Value::UInt(TEMPLATE_WIRE_VERSION)),
            ("fingerprint", Value::string(self.fingerprint())),
            ("key", self.key.to_value()),
            ("template", self.template.to_value()),
        ])
        .to_json()
    }

    /// Parses the canonical wire form, verifying version, fingerprint
    /// consistency and template width.
    ///
    /// # Errors
    ///
    /// Returns [`FqError::Serde`] for malformed documents, version skew,
    /// a fingerprint that does not match the embedded key, or a template
    /// whose width disagrees with the key's shape.
    pub fn from_json(text: &str) -> Result<TemplateArtifact, FqError> {
        let v = Value::parse(text)?;
        let version = v.field("v")?.as_u64()?;
        if version != TEMPLATE_WIRE_VERSION {
            return Err(FqError::Serde(format!(
                "unsupported template wire version {version}"
            )));
        }
        let key = TemplateKey::from_value(v.field("key")?)?;
        let claimed = v.field("fingerprint")?.as_str()?;
        let actual = key.fingerprint();
        if claimed != actual {
            return Err(FqError::Serde(format!(
                "artifact fingerprint `{claimed}` does not match its key (`{actual}`)"
            )));
        }
        let template = CompiledTemplate::from_value(v.field("template")?)?;
        if template.compiled().logical_qubits != key.shape.num_vars() {
            return Err(FqError::Serde(format!(
                "template is {}-wide but the key's shape has {} variables",
                template.compiled().logical_qubits,
                key.shape.num_vars()
            )));
        }
        Ok(TemplateArtifact { key, template })
    }
}

// --------------------------------------------------------------------
// The store trait
// --------------------------------------------------------------------

/// One row of a store's [`TemplateStore::index`]: enough for a peer to
/// decide which templates are worth pulling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TemplateIndexEntry {
    /// The artifact's stable fingerprint.
    pub fingerprint: String,
    /// Recency stamp, comparable only within one index listing (the
    /// memory tier uses a logical clock; spill-only entries report 0 and
    /// therefore sort coldest).
    pub last_used: u64,
}

/// Operation counters of a [`TemplateStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct StoreStats {
    /// Templates evicted from the primary (memory) tier by its LRU bound.
    pub evictions: u64,
    /// Templates resident in the primary tier.
    pub len: usize,
    /// The primary tier's LRU bound, if one is set.
    pub capacity: Option<usize>,
    /// Artifacts written to the spill tier.
    pub spills: u64,
    /// Spill-tier hits promoted into the primary tier.
    pub promotions: u64,
    /// Artifacts resident in the spill tier.
    pub spill_len: usize,
}

/// Where compiled templates live — the storage seam behind
/// [`TemplateCache`](crate::TemplateCache).
///
/// The cache owns concurrency (per-key once-compile slots) and hit/miss
/// accounting; implementations own bytes. Every method is infallible by
/// contract: a store that cannot read an entry (corrupt file, version
/// skew, I/O error) reports a miss and a store that cannot write one
/// drops the write — the cache then simply recompiles, so storage
/// trouble can cost time but never correctness.
pub trait TemplateStore: Send + Sync + std::fmt::Debug {
    /// The template under `key`, if resident.
    fn fetch(&self, key: &TemplateKey) -> Option<CompiledTemplate>;

    /// Inserts (or refreshes) the template under `key`.
    fn insert(&self, key: &TemplateKey, template: &CompiledTemplate);

    /// The full artifact addressed by `fingerprint`, if resident — the
    /// lookup behind `GET /v1/templates/{fingerprint}`.
    fn fetch_fingerprint(&self, fingerprint: &str) -> Option<TemplateArtifact>;

    /// Every resident artifact's fingerprint with a recency stamp,
    /// hottest first — what a peer pulls to decide its warm set.
    fn index(&self) -> Vec<TemplateIndexEntry>;

    /// Exact operation counters.
    fn stats(&self) -> StoreStats;
}

// --------------------------------------------------------------------
// MemoryStore
// --------------------------------------------------------------------

/// Shard count: enough to make cross-key contention negligible on large
/// machines while keeping the LRU eviction scan trivial.
const STORE_SHARDS: usize = 16;

#[derive(Debug)]
struct MemEntry {
    template: CompiledTemplate,
    fingerprint: String,
    last_used: AtomicU64,
}

/// The in-process tier: sharded hash maps with an optional LRU bound and
/// exact eviction counters — the storage behavior the pre-refactor
/// `TemplateCache` carried inline.
#[derive(Debug)]
pub struct MemoryStore {
    shards: Vec<RwLock<HashMap<TemplateKey, MemEntry>>>,
    capacity: Option<usize>,
    /// Monotonic logical clock stamping every access for LRU ordering.
    clock: AtomicU64,
    resident: AtomicUsize,
    evictions: AtomicU64,
}

impl Default for MemoryStore {
    fn default() -> MemoryStore {
        MemoryStore::new()
    }
}

impl MemoryStore {
    /// An empty, unbounded store.
    #[must_use]
    pub fn new() -> MemoryStore {
        MemoryStore {
            shards: (0..STORE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            capacity: None,
            clock: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// An empty store holding at most `capacity` templates, evicting the
    /// least-recently-used beyond that. `capacity = 0` disables retention
    /// entirely (every insert is immediately evicted) — legal, but only
    /// useful for measuring the uncached baseline.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> MemoryStore {
        MemoryStore {
            capacity: Some(capacity),
            ..MemoryStore::new()
        }
    }

    fn shard_of(&self, key: &TemplateKey) -> usize {
        // The raw hash, not the formatted string: fetches run once per
        // planned sub-problem unit and must not allocate.
        (key.fingerprint_u64() as usize) % self.shards.len()
    }

    fn stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Inserts and returns whatever the LRU bound evicted to make room —
    /// the hook [`TieredStore`] uses to demote evictees to its spill
    /// tier.
    pub(crate) fn insert_evicting(
        &self,
        key: &TemplateKey,
        template: &CompiledTemplate,
    ) -> Vec<(TemplateKey, CompiledTemplate)> {
        let stamp = self.stamp();
        let entry = MemEntry {
            template: template.clone(),
            fingerprint: key.fingerprint(),
            last_used: AtomicU64::new(stamp),
        };
        let replaced = {
            let mut map = self.shards[self.shard_of(key)]
                .write()
                .expect("store shard lock");
            map.insert(key.clone(), entry).is_some()
        };
        if !replaced {
            self.resident.fetch_add(1, Ordering::Relaxed);
        }
        self.enforce_capacity()
    }

    /// Evicts least-recently-used templates until the resident count
    /// respects the bound, returning the evicted pairs.
    fn enforce_capacity(&self) -> Vec<(TemplateKey, CompiledTemplate)> {
        let Some(capacity) = self.capacity else {
            return Vec::new();
        };
        let mut evicted = Vec::new();
        while self.resident.load(Ordering::Relaxed) > capacity {
            let mut victim: Option<(u64, usize, TemplateKey)> = None;
            for (si, shard) in self.shards.iter().enumerate() {
                let map = shard.read().expect("store shard lock");
                for (key, entry) in map.iter() {
                    let stamp = entry.last_used.load(Ordering::Relaxed);
                    if victim.as_ref().is_none_or(|&(s, ..)| stamp < s) {
                        victim = Some((stamp, si, key.clone()));
                    }
                }
            }
            let Some((_, si, key)) = victim else {
                return evicted;
            };
            let mut map = self.shards[si].write().expect("store shard lock");
            // A concurrent evictor may have removed it already; the loop
            // then simply rescans.
            if let Some(entry) = map.remove(&key) {
                self.resident.fetch_sub(1, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                evicted.push((key, entry.template));
            }
        }
        evicted
    }
}

impl TemplateStore for MemoryStore {
    fn fetch(&self, key: &TemplateKey) -> Option<CompiledTemplate> {
        let map = self.shards[self.shard_of(key)]
            .read()
            .expect("store shard lock");
        let entry = map.get(key)?;
        entry.last_used.store(self.stamp(), Ordering::Relaxed);
        Some(entry.template.clone())
    }

    fn insert(&self, key: &TemplateKey, template: &CompiledTemplate) {
        self.insert_evicting(key, template);
    }

    fn fetch_fingerprint(&self, fingerprint: &str) -> Option<TemplateArtifact> {
        for shard in &self.shards {
            let map = shard.read().expect("store shard lock");
            for (key, entry) in map.iter() {
                if entry.fingerprint == fingerprint {
                    return Some(TemplateArtifact::new(key.clone(), entry.template.clone()));
                }
            }
        }
        None
    }

    fn index(&self) -> Vec<TemplateIndexEntry> {
        let mut entries: Vec<TemplateIndexEntry> = self
            .shards
            .iter()
            .flat_map(|shard| {
                let map = shard.read().expect("store shard lock");
                map.values()
                    .map(|e| TemplateIndexEntry {
                        fingerprint: e.fingerprint.clone(),
                        last_used: e.last_used.load(Ordering::Relaxed),
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        entries.sort_by_key(|e| std::cmp::Reverse(e.last_used));
        entries
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.resident.load(Ordering::Relaxed),
            capacity: self.capacity,
            ..StoreStats::default()
        }
    }
}

// --------------------------------------------------------------------
// DiskStore
// --------------------------------------------------------------------

/// Whether `s` is a well-formed artifact fingerprint (exactly 16
/// lower-case hex digits) — also the path-traversal guard for
/// fingerprints arriving over HTTP. The single source of the format
/// check: routers and stores must agree on what a fingerprint is.
#[must_use]
pub fn is_template_fingerprint(s: &str) -> bool {
    s.len() == 16
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// The spill tier: one `<fingerprint>.fqt.json` artifact per file.
///
/// Writes go to a temp file in the same directory and are renamed into
/// place, so a concurrent reader (or a crash mid-write) can never observe
/// a half-written artifact. Reads that fail for any reason — missing or
/// unreadable file, corrupt JSON, version skew, fingerprint/key
/// mismatch — are misses; writes that fail are dropped. A disk cache can
/// cost recompiles, never correctness.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    spills: AtomicU64,
}

/// Temp-file sequence shared by every [`DiskStore`] in the process: two
/// stores over the same directory (e.g. two runners sharing one cache
/// dir) must never collide on an in-flight temp name, or one could
/// rename the other's half-written bytes into place.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl DiskStore {
    /// Opens (creating if needed) the spill directory.
    ///
    /// # Errors
    ///
    /// Returns [`FqError::Io`] when the directory cannot be created —
    /// the one storage error worth surfacing, because it means the
    /// operator's `--cache-dir` can never work.
    pub fn new(dir: impl AsRef<Path>) -> Result<DiskStore, FqError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| FqError::Io(format!("creating cache dir `{}`: {e}", dir.display())))?;
        Ok(DiskStore {
            dir,
            spills: AtomicU64::new(0),
        })
    }

    /// The spill directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, fingerprint: &str) -> PathBuf {
        self.dir.join(format!("{fingerprint}{ARTIFACT_SUFFIX}"))
    }

    /// Whether an artifact file for `fingerprint` exists (it may still
    /// turn out corrupt on read).
    pub(crate) fn contains(&self, fingerprint: &str) -> bool {
        is_template_fingerprint(fingerprint) && self.path_of(fingerprint).exists()
    }

    fn read(&self, fingerprint: &str) -> Option<TemplateArtifact> {
        if !is_template_fingerprint(fingerprint) {
            return None;
        }
        let text = std::fs::read_to_string(self.path_of(fingerprint)).ok()?;
        let artifact = TemplateArtifact::from_json(&text).ok()?;
        // The filename must agree with the content (a renamed or
        // colliding file is a miss, not someone else's template).
        (artifact.fingerprint() == fingerprint).then_some(artifact)
    }

    /// Writes `bytes` to `tmp` and fsyncs the file before returning.
    /// The rename only makes the name durable if the *bytes* already
    /// are: rename-before-fsync can survive a crash as a zero-length
    /// (or partial) `.fqt.json` under the final name on some
    /// filesystems, which readers would then keep probing and
    /// rejecting forever.
    fn write_durable(tmp: &Path, bytes: &[u8]) -> std::io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::File::create(tmp)?;
        file.write_all(bytes)?;
        file.sync_all()
    }

    fn write(&self, artifact: &TemplateArtifact) {
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let target = self.path_of(&artifact.fingerprint());
        if Self::write_durable(&tmp, artifact.to_json().as_bytes()).is_ok() {
            if std::fs::rename(&tmp, &target).is_ok() {
                self.spills.fetch_add(1, Ordering::Relaxed);
                // Make the rename itself durable: fsync the directory so
                // a crash after this point cannot forget the new name.
                // Best-effort — a cache that loses an entry on crash is
                // merely cold, but one that keeps a torn entry is noisy.
                if let Ok(dir) = std::fs::File::open(&self.dir) {
                    let _ = dir.sync_all();
                }
            } else {
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }

    fn file_count(&self) -> usize {
        std::fs::read_dir(&self.dir).map_or(0, |entries| {
            entries
                .filter_map(Result::ok)
                .filter(|e| {
                    e.file_name()
                        .to_str()
                        .is_some_and(|name| name.ends_with(ARTIFACT_SUFFIX))
                })
                .count()
        })
    }
}

impl TemplateStore for DiskStore {
    fn fetch(&self, key: &TemplateKey) -> Option<CompiledTemplate> {
        let artifact = self.read(&key.fingerprint())?;
        // A fingerprint collision (or tampered file) must not hand a
        // different shape's template to this key.
        (artifact.key() == key).then(|| artifact.template().clone())
    }

    fn insert(&self, key: &TemplateKey, template: &CompiledTemplate) {
        self.write(&TemplateArtifact::new(key.clone(), template.clone()));
    }

    fn fetch_fingerprint(&self, fingerprint: &str) -> Option<TemplateArtifact> {
        self.read(fingerprint)
    }

    fn index(&self) -> Vec<TemplateIndexEntry> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out: Vec<TemplateIndexEntry> = entries
            .filter_map(Result::ok)
            .filter_map(|e| {
                let name = e.file_name();
                let fingerprint = name.to_str()?.strip_suffix(ARTIFACT_SUFFIX)?.to_string();
                is_template_fingerprint(&fingerprint).then(|| {
                    // Recency from mtime, comparable within this listing.
                    let last_used = e
                        .metadata()
                        .ok()
                        .and_then(|m| m.modified().ok())
                        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                        .map_or(0, |d| d.as_secs());
                    TemplateIndexEntry {
                        fingerprint,
                        last_used,
                    }
                })
            })
            .collect();
        out.sort_by(|a, b| {
            b.last_used
                .cmp(&a.last_used)
                .then_with(|| a.fingerprint.cmp(&b.fingerprint))
        });
        out
    }

    fn stats(&self) -> StoreStats {
        let files = self.file_count();
        StoreStats {
            len: files,
            spills: self.spills.load(Ordering::Relaxed),
            spill_len: files,
            ..StoreStats::default()
        }
    }
}

// --------------------------------------------------------------------
// TieredStore
// --------------------------------------------------------------------

/// Memory over disk: the tier composition behind `--cache-dir`.
///
/// * **insert** writes through: the template lands in memory *and* on
///   disk, so a restarted process (or a sibling shard mounting the same
///   directory) finds every template ever compiled, not just the ones
///   the LRU bound happened to push out.
/// * **fetch** promotes: a memory miss that hits the spill tier re-seats
///   the template in memory (counted in
///   [`StoreStats::promotions`]).
/// * **LRU eviction** demotes: templates the memory bound pushes out are
///   (re-)spilled if their artifact file has vanished, so the union of
///   both tiers never shrinks below everything compiled.
#[derive(Debug)]
pub struct TieredStore {
    memory: MemoryStore,
    disk: DiskStore,
    promotions: AtomicU64,
}

impl TieredStore {
    /// Composes a memory tier over a disk spill tier.
    #[must_use]
    pub fn new(memory: MemoryStore, disk: DiskStore) -> TieredStore {
        TieredStore {
            memory,
            disk,
            promotions: AtomicU64::new(0),
        }
    }

    fn demote(&self, evicted: Vec<(TemplateKey, CompiledTemplate)>) {
        for (key, template) in evicted {
            if !self.disk.contains(&key.fingerprint()) {
                self.disk.insert(&key, &template);
            }
        }
    }
}

impl TemplateStore for TieredStore {
    fn fetch(&self, key: &TemplateKey) -> Option<CompiledTemplate> {
        if let Some(template) = self.memory.fetch(key) {
            return Some(template);
        }
        let template = self.disk.fetch(key)?;
        self.promotions.fetch_add(1, Ordering::Relaxed);
        self.demote(self.memory.insert_evicting(key, &template));
        Some(template)
    }

    fn insert(&self, key: &TemplateKey, template: &CompiledTemplate) {
        self.disk.insert(key, template);
        self.demote(self.memory.insert_evicting(key, template));
    }

    fn fetch_fingerprint(&self, fingerprint: &str) -> Option<TemplateArtifact> {
        self.memory
            .fetch_fingerprint(fingerprint)
            .or_else(|| self.disk.fetch_fingerprint(fingerprint))
    }

    fn index(&self) -> Vec<TemplateIndexEntry> {
        // Memory entries first (logical-clock recency), then spill-only
        // entries with stamp 0 — hottest-first within what one process
        // can know.
        let mut entries = self.memory.index();
        let hot: std::collections::HashSet<String> =
            entries.iter().map(|e| e.fingerprint.clone()).collect();
        for e in self.disk.index() {
            if !hot.contains(&e.fingerprint) {
                entries.push(TemplateIndexEntry {
                    fingerprint: e.fingerprint,
                    last_used: 0,
                });
            }
        }
        entries
    }

    fn stats(&self) -> StoreStats {
        let memory = self.memory.stats();
        let disk = self.disk.stats();
        StoreStats {
            evictions: memory.evictions,
            len: memory.len,
            capacity: memory.capacity,
            spills: disk.spills,
            promotions: self.promotions.load(Ordering::Relaxed),
            spill_len: disk.spill_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrozenQubitsConfig;
    use fq_graphs::{gen, to_ising_pm1};
    use fq_ising::IsingModel;

    fn ba_model(n: usize, seed: u64) -> IsingModel {
        to_ising_pm1(&gen::barabasi_albert(n, 1, seed).unwrap(), seed)
    }

    fn key_and_template(n: usize, seed: u64) -> (TemplateKey, CompiledTemplate) {
        let model = ba_model(n, seed);
        let device = Device::ibm_montreal();
        let options = CompileOptions::level3();
        let template = CompiledTemplate::compile(&model, 1, &device, options).unwrap();
        let key = TemplateKey::new(ShapeSignature::of(&model), &device, 1, options);
        (key, template)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fq-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fingerprints_are_stable_and_key_sensitive() {
        let (key, _) = key_and_template(8, 1);
        assert_eq!(key.fingerprint(), key.clone().fingerprint());
        assert!(is_template_fingerprint(&key.fingerprint()));
        let (other, _) = key_and_template(10, 1);
        assert_ne!(key.fingerprint(), other.fingerprint());
        // Same shape, different options → different artifact address.
        let relaxed = TemplateKey {
            options: CompileOptions {
                optimize: false,
                ..key.options()
            },
            ..key.clone()
        };
        assert_ne!(key.fingerprint(), relaxed.fingerprint());
    }

    #[test]
    fn artifact_json_round_trips_byte_for_byte() {
        let (key, template) = key_and_template(9, 2);
        let artifact = TemplateArtifact::new(key, template);
        let text = artifact.to_json();
        let back = TemplateArtifact::from_json(&text).unwrap();
        assert_eq!(back, artifact);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn artifact_rejects_version_skew_and_fingerprint_mismatch() {
        let (key, template) = key_and_template(8, 3);
        let good = TemplateArtifact::new(key, template).to_json();
        let skewed = good.replacen("\"v\":1", "\"v\":2", 1);
        assert!(matches!(
            TemplateArtifact::from_json(&skewed),
            Err(FqError::Serde(msg)) if msg.contains("version")
        ));
        let tampered = good.replacen("\"layers\":1", "\"layers\":2", 1);
        assert!(
            TemplateArtifact::from_json(&tampered).is_err(),
            "a key edit must break the embedded fingerprint"
        );
    }

    #[test]
    fn disk_store_spills_and_restores() {
        let dir = temp_dir("spill");
        let disk = DiskStore::new(&dir).unwrap();
        let (key, template) = key_and_template(8, 4);
        assert!(disk.fetch(&key).is_none());
        disk.insert(&key, &template);
        assert_eq!(disk.fetch(&key).unwrap(), template);
        assert_eq!(disk.stats().spill_len, 1);

        // A second store over the same directory (the "restart") sees it.
        let restarted = DiskStore::new(&dir).unwrap();
        assert_eq!(restarted.fetch(&key).unwrap(), template);
        let index = restarted.index();
        assert_eq!(index.len(), 1);
        assert_eq!(index[0].fingerprint, key.fingerprint());
        assert_eq!(
            restarted.fetch_fingerprint(&key.fingerprint()).unwrap(),
            TemplateArtifact::new(key, template)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_treats_damage_as_misses() {
        let dir = temp_dir("damage");
        let disk = DiskStore::new(&dir).unwrap();
        let (key, template) = key_and_template(8, 5);
        disk.insert(&key, &template);
        let path = dir.join(format!("{}{ARTIFACT_SUFFIX}", key.fingerprint()));

        // Truncation, garbage and version skew are all silent misses.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(disk.fetch(&key).is_none(), "truncated file");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(disk.fetch(&key).is_none(), "garbage file");
        std::fs::write(&path, full.replacen("\"v\":1", "\"v\":9", 1)).unwrap();
        assert!(disk.fetch(&key).is_none(), "version-skewed file");

        // Hostile fingerprints never touch the filesystem as paths.
        assert!(disk.fetch_fingerprint("../../etc/passwd").is_none());
        assert!(disk.fetch_fingerprint("ABCDEF0123456789").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_survives_crash_leftovers() {
        // The worst a crash mid-spill can now leave is (a) an orphaned
        // temp file — never the final name, because bytes are fsynced
        // before the rename — or (b) on a filesystem that reorders
        // metadata anyway, a zero-length or truncated `.fqt.json`.
        // Both must read as misses and a rewrite must heal them.
        let dir = temp_dir("crash");
        let disk = DiskStore::new(&dir).unwrap();
        let (key, template) = key_and_template(8, 7);
        let path = dir.join(format!("{}{ARTIFACT_SUFFIX}", key.fingerprint()));

        // Zero-length file under the final name: a miss, not an error.
        std::fs::write(&path, "").unwrap();
        assert!(disk.fetch(&key).is_none(), "zero-length file");
        assert!(disk.fetch_fingerprint(&key.fingerprint()).is_none());

        // The index lists by filename (content is only validated on
        // read), so the torn entry may appear there — but an orphaned
        // temp file never does, and a peer pulling the torn name just
        // misses.
        std::fs::write(dir.join(".tmp-999-0"), "half a doc").unwrap();
        let index = disk.index();
        assert!(
            index.iter().all(|e| e.fingerprint == key.fingerprint()),
            "temp files never index"
        );

        // A fresh insert heals the torn entry in place.
        disk.insert(&key, &template);
        assert_eq!(disk.fetch(&key).unwrap(), template);
        assert_eq!(
            disk.index().len(),
            1,
            "healed entry indexes once, temp orphan still invisible"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiered_store_promotes_and_demotes() {
        let dir = temp_dir("tiered");
        let (key_a, template_a) = key_and_template(8, 6);
        let (key_b, template_b) = key_and_template(10, 6);
        // A 1-slot memory tier: inserting B evicts (demotes) A.
        let store = TieredStore::new(MemoryStore::with_capacity(1), DiskStore::new(&dir).unwrap());
        store.insert(&key_a, &template_a);
        store.insert(&key_b, &template_b);
        let s = store.stats();
        assert_eq!((s.len, s.evictions), (1, 1));
        assert_eq!(s.spill_len, 2, "write-through spills both");

        // Fetching A misses memory, hits disk, and promotes (evicting B).
        assert_eq!(store.fetch(&key_a).unwrap(), template_a);
        let s = store.stats();
        assert_eq!(s.promotions, 1);
        assert_eq!(s.len, 1);
        // B is still reachable through the spill tier.
        assert_eq!(store.fetch(&key_b).unwrap(), template_b);
        assert_eq!(store.index().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_capacity_memory_still_serves_through_disk() {
        let dir = temp_dir("zero-mem");
        let store = TieredStore::new(MemoryStore::with_capacity(0), DiskStore::new(&dir).unwrap());
        let (key, template) = key_and_template(8, 7);
        store.insert(&key, &template);
        assert_eq!(store.stats().len, 0, "memory retains nothing");
        assert_eq!(store.fetch(&key).unwrap(), template, "disk still serves");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_config_smoke_uses_the_same_compile_options() {
        // Guard: the default config's options must be representable in a
        // fingerprint (the exhaustive layout match above).
        let cfg = FrozenQubitsConfig::default();
        let (key, _) = key_and_template(8, 8);
        assert_eq!(key.options(), cfg.compile);
    }
}
