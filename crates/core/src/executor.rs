//! Phase 2 of the plan/execute pipeline: running an
//! [`ExecutionPlan`]'s branches through an [`Executor`] backend.
//!
//! Every branch is an independent job — optimize its `(γ, β)`, instantiate
//! its executable by angle-editing the plan's shared template (no
//! recompilation), and evaluate the ideal/noisy expectations or sample the
//! noisy device. Branch jobs never communicate, so they parallelize
//! embarrassingly: [`ParallelExecutor`] fans them out across worker
//! threads (scoped `std::thread` — the offline toolchain has no rayon,
//! but the work-stealing loop below serves the same role), while
//! [`SequentialExecutor`] runs them in order on the caller's thread.
//! Both produce **bit-identical** outcomes: each branch's arithmetic is
//! self-contained and results are aggregated in branch order.

use std::sync::atomic::{AtomicUsize, Ordering};

use fq_circuit::build_qaoa_circuit;
use fq_ising::{OutputDistribution, Spin};
use fq_sim::analytic::{expectation_from_terms_p1, PreparedP1};
use fq_sim::{
    fidelity_model, ising_expectation_from_terms, log_eps, noisy_expectation_from_lightcone,
    noisy_expectation_from_terms, noisy_expectation_lightcone, sample_noisy, NoisySamplerConfig,
};
use fq_transpile::{Compiled, Device};

use crate::api::ErrorModel;
use crate::pipeline::{metrics_of, polish_parameters_tiered, CircuitMetrics};
use crate::plan::ExecutionPlan;
use crate::{
    optimize_parameters_multilayer, optimize_parameters_prepared, FqError, FrozenQubitsConfig,
};

/// Everything measured about one executed branch of a plan.
#[derive(Clone, Debug, PartialEq)]
pub struct BranchOutcome {
    /// Branch index within the plan.
    pub branch: usize,
    /// The branch bitmask (bit `t` set ⇒ frozen qubit `t` is `−1`).
    pub mask: u64,
    /// Aggregation weight (2 when the branch covers a pruned partner).
    pub weight: f64,
    /// Optimized first-layer `(γ_1, β_1)`.
    pub params: (f64, f64),
    /// All optimized γ parameters (one per layer).
    pub gammas: Vec<f64>,
    /// All optimized β parameters (one per layer).
    pub betas: Vec<f64>,
    /// Ideal expectation at the optimized parameters.
    pub ev_ideal: f64,
    /// Modelled noisy expectation at the same parameters.
    pub ev_noisy: f64,
    /// Log-EPS of the branch executable.
    pub log_eps: f64,
    /// Circuit-level cost metrics of the branch executable.
    pub metrics: CircuitMetrics,
}

/// One branch's sampling result, decoded into the parent space.
#[derive(Clone, Debug, PartialEq)]
pub struct BranchSamples {
    /// Branch index within the plan.
    pub branch: usize,
    /// Decoded outcomes of the executed sub-circuit.
    pub decoded: OutputDistribution,
    /// Outcomes inferred for the pruned symmetric partner (§3.7.2), when
    /// the branch covers one.
    pub partner_decoded: Option<OutputDistribution>,
}

/// Which deterministic noise model [`Executor::execute_with`] evaluates
/// the modelled-hardware expectation under.
///
/// Both models are closed-form and deterministic; they differ in
/// granularity, and a [`Backend`](crate::api::Backend) picks one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum NoiseEval {
    /// Per-term lightcone fidelity attenuation (the paper's model; the
    /// default used by the analytic pipeline since PR 1).
    #[default]
    Lightcone,
    /// A single global process-fidelity attenuation per circuit — coarser
    /// but cheaper, the classic depolarizing-channel estimate.
    ProcessFidelity,
}

/// A branch-execution backend consuming an [`ExecutionPlan`].
///
/// Implementations decide *scheduling* only; the per-branch math is shared
/// and deterministic, so any two executors return identical results in
/// identical order.
pub trait Executor {
    /// Human-readable backend name.
    fn name(&self) -> &'static str;

    /// Runs the analytic pipeline for every branch under an explicit
    /// noise model: parameter optimization, template instantiation,
    /// ideal + modelled-noisy expectations, EPS and circuit metrics.
    /// Outcomes are in branch order.
    ///
    /// # Errors
    ///
    /// Propagates the first branch failure (by branch order).
    fn execute_with(
        &self,
        plan: &ExecutionPlan,
        device: &Device,
        config: &FrozenQubitsConfig,
        noise: NoiseEval,
    ) -> Result<Vec<BranchOutcome>, FqError>;

    /// Runs the analytic pipeline under the default
    /// [`NoiseEval::Lightcone`] model (the paper's methodology).
    ///
    /// # Errors
    ///
    /// Propagates the first branch failure (by branch order).
    fn execute(
        &self,
        plan: &ExecutionPlan,
        device: &Device,
        config: &FrozenQubitsConfig,
    ) -> Result<Vec<BranchOutcome>, FqError> {
        self.execute_with(plan, device, config, NoiseEval::Lightcone)
    }

    /// Runs the sampling pipeline for every branch: parameter
    /// optimization, template instantiation, Monte-Carlo noisy sampling
    /// and decoding (including pruned-partner inference). Results are in
    /// branch order.
    ///
    /// # Errors
    ///
    /// Propagates the first branch failure (by branch order).
    fn sample(
        &self,
        plan: &ExecutionPlan,
        device: &Device,
        config: &FrozenQubitsConfig,
        shots: u64,
    ) -> Result<Vec<BranchSamples>, FqError>;
}

/// Which [`Executor`] backend the pipeline wrappers should build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ExecutorKind {
    /// Run branches in order on the caller's thread.
    Sequential,
    /// Fan branches out across all available cores — or across
    /// `FQ_THREADS` workers when that environment variable is set to an
    /// integer ≥ 1 (see [`auto_threads`]). The default: results are
    /// identical to sequential, only faster.
    #[default]
    Parallel,
    /// Fan branches out across a fixed number of worker threads
    /// (ignores `FQ_THREADS`).
    Threads(usize),
}

impl ExecutorKind {
    /// Builds the backend this kind describes.
    #[must_use]
    pub fn build(self) -> Box<dyn Executor + Send + Sync> {
        match self {
            ExecutorKind::Sequential => Box::new(SequentialExecutor),
            ExecutorKind::Parallel => Box::new(ParallelExecutor::default()),
            ExecutorKind::Threads(t) => Box::new(ParallelExecutor::new(t)),
        }
    }
}

/// Runs branches one after another on the caller's thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SequentialExecutor;

impl Executor for SequentialExecutor {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn execute_with(
        &self,
        plan: &ExecutionPlan,
        device: &Device,
        config: &FrozenQubitsConfig,
        noise: NoiseEval,
    ) -> Result<Vec<BranchOutcome>, FqError> {
        (0..plan.num_branches())
            .map(|b| execute_branch(plan, b, device, config, noise))
            .collect()
    }

    fn sample(
        &self,
        plan: &ExecutionPlan,
        device: &Device,
        config: &FrozenQubitsConfig,
        shots: u64,
    ) -> Result<Vec<BranchSamples>, FqError> {
        (0..plan.num_branches())
            .map(|b| sample_branch(plan, b, device, config, shots))
            .collect()
    }
}

/// Fans branches out across worker threads.
///
/// Workers claim branch indices from a shared atomic counter (simple
/// work stealing), so load imbalance between branches — e.g. differing
/// parameter-optimization convergence — does not serialize the run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParallelExecutor {
    /// Worker count; 0 means one per available core.
    pub threads: usize,
}

impl ParallelExecutor {
    /// An executor using `threads` workers (0 = auto: the `FQ_THREADS`
    /// environment override if set and valid, else one per available
    /// core).
    #[must_use]
    pub fn new(threads: usize) -> ParallelExecutor {
        ParallelExecutor { threads }
    }

    fn effective_threads(&self, jobs: usize) -> usize {
        let t = if self.threads == 0 {
            auto_threads()
        } else {
            self.threads
        };
        t.min(jobs).max(1)
    }
}

/// Resolves the automatic worker count used whenever a thread knob is 0:
/// the `FQ_THREADS` environment variable if it parses as an integer ≥ 1
/// (anything else — empty, non-numeric, or `0` — is ignored), otherwise
/// one worker per available core.
///
/// This is the single override point for [`ExecutorKind::Parallel`] and
/// the batch engine's auto mode, so one variable caps every pool in the
/// process — the standard way to pin CI runners or share a box.
#[must_use]
pub fn auto_threads() -> usize {
    if let Ok(raw) = std::env::var("FQ_THREADS") {
        if let Ok(t) = raw.trim().parse::<usize>() {
            if t >= 1 {
                return t;
            }
        }
    }
    std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
}

impl Executor for ParallelExecutor {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn execute_with(
        &self,
        plan: &ExecutionPlan,
        device: &Device,
        config: &FrozenQubitsConfig,
        noise: NoiseEval,
    ) -> Result<Vec<BranchOutcome>, FqError> {
        let n = plan.num_branches();
        par_map(self.effective_threads(n), n, |b| {
            execute_branch(plan, b, device, config, noise)
        })
    }

    fn sample(
        &self,
        plan: &ExecutionPlan,
        device: &Device,
        config: &FrozenQubitsConfig,
        shots: u64,
    ) -> Result<Vec<BranchSamples>, FqError> {
        let n = plan.num_branches();
        par_map(self.effective_threads(n), n, |b| {
            sample_branch(plan, b, device, config, shots)
        })
    }
}

/// Maps `job` over `0..n` on `threads` scoped workers, preserving index
/// order in the output. The first error (by index) wins, matching the
/// sequential executor's error behaviour.
fn par_map<T: Send>(
    threads: usize,
    n: usize,
    job: impl Fn(usize) -> Result<T, FqError> + Sync,
) -> Result<Vec<T>, FqError> {
    if threads <= 1 || n <= 1 {
        return (0..n).map(job).collect();
    }
    let mut out = Vec::with_capacity(n);
    for result in par_collect(threads, n, job) {
        out.push(result?);
    }
    Ok(out)
}

/// Runs `job` over `0..n` on `threads` scoped workers and returns all
/// results in index order — the work-stealing primitive under both
/// [`par_map`] and the batch engine's jobs×branches pool.
///
/// Workers claim indices from one shared atomic counter, so a slow item
/// never serializes its successors; each result lands in a single
/// pre-sized buffer through its claimed index (disjoint writes — no
/// per-item lock, no per-item allocation).
#[allow(unsafe_code)] // sole caller of `disjoint::Writer::write`; see the SAFETY note below
pub(crate) fn par_collect<T: Send>(
    threads: usize,
    n: usize,
    job: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    if threads <= 1 || n <= 1 {
        return (0..n).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let writer = disjoint::Writer::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = job(i);
                // SAFETY: `i` came from `fetch_add` on a counter that
                // starts at 0 and only grows, so every in-range index is
                // claimed by exactly one worker — writes are disjoint —
                // and `i < n` was checked above. The scope joins all
                // workers before `slots` is read again.
                unsafe { writer.write(i, value) };
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index was claimed by a worker"))
        .collect()
}

/// The one unsafe corner of the crate: a shared writer over a pre-sized
/// `Option<T>` buffer whose callers guarantee index-disjoint writes.
///
/// Equivalent in spirit to `rayon`'s collect-into-vec plumbing (the
/// offline toolchain has no rayon): claiming indices through an atomic
/// counter makes each slot exclusively owned by one worker, so no
/// per-slot lock is needed.
#[allow(unsafe_code)]
mod disjoint {
    use std::marker::PhantomData;

    pub(super) struct Writer<'a, T> {
        ptr: *mut Option<T>,
        len: usize,
        _buf: PhantomData<&'a mut [Option<T>]>,
    }

    // SAFETY: sharing the writer across threads only permits `write`,
    // whose contract makes all concurrent accesses disjoint; `T: Send`
    // lets the written values cross threads.
    unsafe impl<T: Send> Sync for Writer<'_, T> {}

    impl<'a, T> Writer<'a, T> {
        /// Wraps `buf`, borrowing it mutably for the writer's lifetime so
        /// no safe code can alias the slots while workers write.
        pub(super) fn new(buf: &'a mut [Option<T>]) -> Writer<'a, T> {
            Writer {
                ptr: buf.as_mut_ptr(),
                len: buf.len(),
                _buf: PhantomData,
            }
        }

        /// Writes `value` into slot `i`.
        ///
        /// # Safety
        ///
        /// `i` must be in bounds and no two calls (across all threads) may
        /// use the same `i`; the buffer must not be read until all writers
        /// are joined. The overwritten `None` needs no drop.
        pub(super) unsafe fn write(&self, i: usize, value: T) {
            debug_assert!(i < self.len, "disjoint write out of bounds");
            // SAFETY: in-bounds per the contract; exclusive access to this
            // slot per the disjoint-index contract.
            unsafe { self.ptr.add(i).write(Some(value)) };
        }
    }
}

/// The shared per-branch analytic job: optimize, instantiate from the
/// template, evaluate. (`pub(crate)`: the batch engine drives branches
/// directly through its flattened jobs×branches pool.)
pub(crate) fn execute_branch(
    plan: &ExecutionPlan,
    branch: usize,
    device: &Device,
    config: &FrozenQubitsConfig,
    noise: NoiseEval,
) -> Result<BranchOutcome, FqError> {
    let exec = plan.branch(branch);
    let model = exec.problem.model();
    let p = plan.layers();
    // The QoS contract: `None` is the exact path (bit-identical to every
    // pre-tier release); `Some(em)` swaps in the approximate optimizer
    // and noise estimator that `em`'s knobs describe.
    let em = ErrorModel::for_tier(config.tier);
    // For p = 1, one structure gather serves the whole branch: the grid
    // scan, the Nelder–Mead refinement, and the final term evaluation.
    let prepared = (p == 1).then(|| PreparedP1::new(model));
    let (gammas, betas) = match (&prepared, em.as_ref()) {
        // The tiers optimize once per plan on the representative branch
        // and share the angles across siblings (the plan memoizes them);
        // `balanced` additionally polishes the shared seed on each
        // branch's own landscape (`fast`'s zero budget skips it); the
        // exact path optimizes every branch from scratch.
        (Some(prep), Some(em)) => {
            let shared = plan.tier_params(em, config)?;
            let (g, b) = polish_parameters_tiered(prep, em, shared.0[0], shared.1[0]);
            (vec![g], vec![b])
        }
        (None, Some(em)) => {
            let shared = plan.tier_params(em, config)?;
            (shared.0.clone(), shared.1.clone())
        }
        (Some(prep), None) => {
            let (g, b) = optimize_parameters_prepared(prep, config.param_grid)?;
            (vec![g], vec![b])
        }
        (None, None) => optimize_parameters_multilayer(model, p, config.param_grid)?,
    };
    // Instantiate from the shared template: angle editing only, no
    // layout/routing/scheduling work. The approximate tiers skip even
    // the angle edit: nothing downstream of this point reads an angle —
    // the noise models, EPS and metrics are all structure-only, and the
    // template shares the branch's exact structure — so reusing the
    // template's own compilation changes no output bit; it only saves
    // the per-branch gate-list rewrite. They also fetch the template's
    // memoized branch-invariant tables (cone fidelities, attenuation,
    // EPS, metrics) instead of re-deriving them per branch — bit-equal
    // by construction (see `TierDerived`), and the dominant per-branch
    // cost outside the optimizer.
    let edited;
    let tier_derived;
    let compiled: &Compiled = if let Some(em) = em.as_ref() {
        let template = plan.template_for(branch);
        tier_derived = Some(template.tier_derived(model, p, device, em.lightcone_depth)?);
        template.compiled()
    } else {
        tier_derived = None;
        edited = plan.template_for(branch).edit_for(model)?;
        &edited
    };
    // The per-term expectations are computed once; the scalar ideal
    // expectation is assembled from them bit-identically instead of a
    // second full evaluation (the old two-call path recomputed every
    // trigonometric factor).
    let (ev_ideal, z, zz) = if let Some(prep) = &prepared {
        let (z, zz) = prep.terms_at(gammas[0], betas[0]);
        let ev = expectation_from_terms_p1(model, &z, &zz)?;
        (ev, z, zz)
    } else {
        let qc = build_qaoa_circuit(model, p)?;
        let bound = qc.bind(&gammas, &betas)?;
        let sv = fq_sim::run_circuit(&bound)?;
        let (z, zz) = sv.term_expectations(model)?;
        let ev = ising_expectation_from_terms(model, &z, &zz)?;
        (ev, z, zz)
    };
    let ev_noisy = match (noise, tier_derived.as_ref()) {
        (NoiseEval::Lightcone, None) => {
            noisy_expectation_lightcone(model, &z, &zz, compiled, device)?
        }
        (NoiseEval::Lightcone, Some(d)) => {
            noisy_expectation_from_lightcone(model, &z, &zz, &d.fid, &d.cones)?
        }
        (NoiseEval::ProcessFidelity, None) => {
            let fid = fidelity_model(compiled, device);
            noisy_expectation_from_terms(model, &z, &zz, &fid)?
        }
        (NoiseEval::ProcessFidelity, Some(d)) => {
            noisy_expectation_from_terms(model, &z, &zz, &d.fid)?
        }
    };
    let (eps_log, metrics) = match tier_derived.as_ref() {
        Some(d) => (d.eps_log, d.metrics),
        None => (log_eps(compiled, device), metrics_of(model, p, compiled)),
    };
    Ok(BranchOutcome {
        branch,
        mask: exec.mask,
        weight: plan.branch_weight(branch),
        params: (gammas[0], betas[0]),
        gammas,
        betas,
        ev_ideal,
        ev_noisy,
        log_eps: eps_log,
        metrics,
    })
}

/// The shared per-branch sampling job: optimize, instantiate, sample,
/// decode (with pruned-partner inference).
pub(crate) fn sample_branch(
    plan: &ExecutionPlan,
    branch: usize,
    device: &Device,
    config: &FrozenQubitsConfig,
    shots: u64,
) -> Result<BranchSamples, FqError> {
    let exec = plan.branch(branch);
    let model = exec.problem.model();
    let (gammas, betas) = optimize_parameters_multilayer(model, plan.layers(), config.param_grid)?;
    let edited = plan.template_for(branch).edit_for(model)?;
    let bound = edited.circuit.bind(&gammas, &betas)?;
    let compiled = edited.instantiate(bound);
    let sampler = NoisySamplerConfig {
        shots,
        trajectories: 16,
        seed: config.seed.wrapping_add(branch as u64),
    };
    let sub_dist = sample_noisy(&compiled, device, sampler)?;

    let decoded = sub_dist.decode(&exec.problem)?;

    // Infer the pruned partner: flip every sub-space bit, then decode
    // through the partner's frozen assignment (§3.7.2).
    let partner_decoded = if exec.partner_mask.is_some() {
        let partner_assignment: Vec<(usize, Spin)> = exec
            .problem
            .frozen()
            .iter()
            .map(|&(q, s)| (q, s.flipped()))
            .collect();
        let partner = plan.parent_model().freeze(&partner_assignment)?;
        Some(sub_dist.flipped().decode(&partner)?)
    } else {
        None
    };

    Ok(BranchSamples {
        branch,
        decoded,
        partner_decoded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan_execution;
    use fq_graphs::{gen, to_ising_pm1};
    use fq_ising::IsingModel;

    fn ba_model(n: usize, seed: u64) -> IsingModel {
        to_ising_pm1(&gen::barabasi_albert(n, 1, seed).unwrap(), seed)
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let model = ba_model(12, 11);
        let cfg = FrozenQubitsConfig::with_frozen(3);
        let device = Device::ibm_montreal();
        let plan = plan_execution(&model, &device, &cfg).unwrap();
        let seq = SequentialExecutor.execute(&plan, &device, &cfg).unwrap();
        let par = ParallelExecutor::new(0)
            .execute(&plan, &device, &cfg)
            .unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq.len(), 4);
        assert!(seq.iter().enumerate().all(|(i, o)| o.branch == i));
    }

    #[test]
    fn par_map_preserves_order_and_first_error() {
        let ok: Result<Vec<usize>, _> = par_map(4, 32, |i| Ok(i * i));
        assert_eq!(ok.unwrap(), (0..32).map(|i| i * i).collect::<Vec<_>>());

        let err = par_map(4, 8, |i| {
            if i >= 3 {
                Err(FqError::InvalidConfig(format!("branch {i}")))
            } else {
                Ok(i)
            }
        });
        match err {
            Err(FqError::InvalidConfig(msg)) => assert_eq!(msg, "branch 3"),
            other => panic!("expected first error by index, got {other:?}"),
        }
    }

    #[test]
    fn executor_names_and_thread_clamping() {
        assert_eq!(SequentialExecutor.name(), "sequential");
        assert_eq!(ParallelExecutor::default().name(), "parallel");
        assert_eq!(ParallelExecutor::new(7).effective_threads(2), 2);
        assert_eq!(ParallelExecutor::new(2).effective_threads(16), 2);
        assert!(ParallelExecutor::new(0).effective_threads(64) >= 1);
        // An explicit thread count always wins over the env override.
        assert!(auto_threads() >= 1);
    }

    #[test]
    fn par_collect_preserves_index_order() {
        assert_eq!(
            par_collect(4, 64, |i| i * 3),
            (0..64).map(|i| i * 3).collect::<Vec<_>>()
        );
        assert_eq!(par_collect(4, 0, |i| i), Vec::<usize>::new());
    }

    // The old `execute_branch` evaluated the ideal expectation twice —
    // once as a scalar, once per term. The single-pass assembly must be
    // bit-identical to that two-call path, at p = 1 and p ≥ 2.
    #[test]
    fn single_pass_ev_matches_the_old_two_call_path() {
        use fq_sim::analytic::expectation_p1;
        let device = Device::ibm_montreal();
        for (p, n) in [(1usize, 12usize), (2, 10)] {
            let parent = ba_model(n, 17);
            let cfg = FrozenQubitsConfig {
                layers: p,
                ..FrozenQubitsConfig::with_frozen(2)
            };
            let plan = plan_execution(&parent, &device, &cfg).unwrap();
            for b in 0..plan.num_branches() {
                let out = execute_branch(&plan, b, &device, &cfg, NoiseEval::Lightcone).unwrap();
                let model = plan.branch(b).problem.model();
                let old_ev = if p == 1 {
                    expectation_p1(model, out.gammas[0], out.betas[0]).unwrap()
                } else {
                    let qc = build_qaoa_circuit(model, p).unwrap();
                    let bound = qc.bind(&out.gammas, &out.betas).unwrap();
                    fq_sim::run_circuit(&bound)
                        .unwrap()
                        .expectation_ising(model)
                        .unwrap()
                };
                assert_eq!(out.ev_ideal, old_ev, "p={p} branch {b}");
            }
        }
    }

    #[test]
    fn sampling_covers_partner_branches() {
        let model = ba_model(6, 13);
        let cfg = FrozenQubitsConfig::default();
        let device = Device::ibm_montreal();
        let plan = plan_execution(&model, &device, &cfg).unwrap();
        let seq = SequentialExecutor
            .sample(&plan, &device, &cfg, 256)
            .unwrap();
        let par = ParallelExecutor::new(0)
            .sample(&plan, &device, &cfg, 256)
            .unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq.len(), 1, "m=1 pruned executes one branch");
        assert!(seq[0].partner_decoded.is_some());
    }
}
