//! Simultaneous-perturbation stochastic approximation (SPSA).
//!
//! SPSA estimates a gradient from just two objective evaluations per step
//! regardless of dimension, which makes it the optimizer of choice when
//! every evaluation is thousands of noisy quantum trials.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::OptimResult;

/// Options for [`spsa`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpsaOptions {
    /// Number of iterations (each costs two evaluations).
    pub iterations: usize,
    /// Initial step size `a` of the gain sequence `a_k = a / (k+1+A)^α`.
    pub a: f64,
    /// Stability constant `A`.
    pub big_a: f64,
    /// Gain exponent `α` (0.602 is Spall's recommendation).
    pub alpha: f64,
    /// Initial perturbation size `c` of `c_k = c / (k+1)^γ`.
    pub c: f64,
    /// Perturbation exponent `γ` (0.101 is Spall's recommendation).
    pub gamma: f64,
}

impl Default for SpsaOptions {
    fn default() -> Self {
        SpsaOptions {
            iterations: 300,
            a: 0.2,
            big_a: 10.0,
            alpha: 0.602,
            c: 0.15,
            gamma: 0.101,
        }
    }
}

/// Minimizes `f` from `x0` with SPSA. Deterministic for a fixed `seed`.
///
/// # Panics
///
/// Panics if `x0` is empty.
///
/// # Example
///
/// ```
/// use fq_optim::{spsa, SpsaOptions};
///
/// let r = spsa(
///     |p: &[f64]| (p[0] - 1.0).powi(2) + (p[1] - 2.0).powi(2),
///     &[0.0, 0.0],
///     &SpsaOptions::default(),
///     7,
/// );
/// assert!(r.best_value < 0.05);
/// ```
pub fn spsa(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    options: &SpsaOptions,
    seed: u64,
) -> OptimResult {
    assert!(!x0.is_empty(), "spsa needs at least one parameter");
    let dim = x0.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = x0.to_vec();
    let mut evaluations = 0usize;
    let mut trace = Vec::new();
    let mut best = (x.clone(), f64::INFINITY);

    let mut eval = |p: &[f64],
                    evaluations: &mut usize,
                    trace: &mut Vec<f64>,
                    best: &mut (Vec<f64>, f64)|
     -> f64 {
        let v = f(p);
        *evaluations += 1;
        if v < best.1 {
            *best = (p.to_vec(), v);
        }
        trace.push(best.1);
        v
    };

    for k in 0..options.iterations {
        let ak = options.a / (k as f64 + 1.0 + options.big_a).powf(options.alpha);
        let ck = options.c / (k as f64 + 1.0).powf(options.gamma);
        let delta: Vec<f64> = (0..dim)
            .map(|_| if rng.random::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let plus: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi + ck * d).collect();
        let minus: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi - ck * d).collect();
        let v_plus = eval(&plus, &mut evaluations, &mut trace, &mut best);
        let v_minus = eval(&minus, &mut evaluations, &mut trace, &mut best);
        let diff = (v_plus - v_minus) / (2.0 * ck);
        for (xi, d) in x.iter_mut().zip(&delta) {
            *xi -= ak * diff / d;
        }
    }
    // Final evaluation at the converged point.
    eval(&x.clone(), &mut evaluations, &mut trace, &mut best);

    OptimResult {
        best_params: best.0,
        best_value: best.1,
        evaluations,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_smooth_bowl() {
        let r = spsa(
            |p: &[f64]| p.iter().map(|x| (x - 0.7).powi(2)).sum::<f64>(),
            &[2.0, -1.0, 0.0],
            &SpsaOptions::default(),
            1,
        );
        assert!(r.best_value < 0.02, "value {}", r.best_value);
    }

    #[test]
    fn tolerates_noisy_objectives() {
        // Deterministic pseudo-noise from the query point itself.
        let noisy = |p: &[f64]| {
            let clean: f64 = p.iter().map(|x| x * x).sum();
            let wobble = (p[0] * 1913.0).sin() * 0.05;
            clean + wobble
        };
        let r = spsa(
            noisy,
            &[1.5, -1.5],
            &SpsaOptions {
                iterations: 600,
                ..SpsaOptions::default()
            },
            3,
        );
        assert!(r.best_value < 0.1, "value {}", r.best_value);
    }

    #[test]
    fn deterministic_per_seed() {
        let obj = |p: &[f64]| p[0].powi(2);
        let a = spsa(obj, &[1.0], &SpsaOptions::default(), 9);
        let b = spsa(obj, &[1.0], &SpsaOptions::default(), 9);
        assert_eq!(a.best_params, b.best_params);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn evaluation_count_is_two_per_iteration_plus_final() {
        let r = spsa(
            |p: &[f64]| p[0].abs(),
            &[1.0],
            &SpsaOptions {
                iterations: 50,
                ..SpsaOptions::default()
            },
            0,
        );
        assert_eq!(r.evaluations, 101);
    }
}
