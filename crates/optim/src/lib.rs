//! Classical optimizers for the QAOA parameter loop (Fig. 1a).
//!
//! QAOA is a variational algorithm: a classical optimizer adjusts the
//! circuit parameters `(γ, β)` from the measured expectation values. This
//! crate provides the derivative-free optimizers used throughout the
//! evaluation:
//!
//! * [`nelder_mead`] — the default simplex optimizer;
//! * [`spsa`] — simultaneous-perturbation stochastic approximation, robust
//!   to sampling noise;
//! * [`grid_scan_2d`] — the exhaustive 50×50 `(γ, β)` sweep behind the
//!   optimization-landscape study (Fig. 12).
//!
//! # Example
//!
//! ```
//! use fq_optim::{nelder_mead, NelderMeadOptions};
//!
//! // Minimize a shifted quadratic bowl.
//! let result = nelder_mead(
//!     |p: &[f64]| (p[0] - 1.0).powi(2) + (p[1] + 2.0).powi(2),
//!     &[0.0, 0.0],
//!     &NelderMeadOptions::default(),
//! );
//! assert!((result.best_params[0] - 1.0).abs() < 1e-4);
//! assert!((result.best_params[1] + 2.0).abs() < 1e-4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod nm;
mod spsa;

pub use grid::{
    grid_axis, grid_scan_2d, grid_scan_2d_coarse_to_fine, grid_scan_2d_coarse_to_fine_with,
    grid_scan_2d_hoisted, grid_scan_2d_rows, grid_scan_2d_rows_par, CoarseToFineScan, GridScan,
};
pub use nm::{nelder_mead, NelderMeadOptions};
pub use spsa::{spsa, SpsaOptions};

use serde::{Deserialize, Serialize};

/// The outcome of an optimization run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OptimResult {
    /// The best parameter vector found.
    pub best_params: Vec<f64>,
    /// The objective value at [`OptimResult::best_params`].
    pub best_value: f64,
    /// Total number of objective evaluations.
    pub evaluations: usize,
    /// Best-so-far objective value after each evaluation (monotone
    /// non-increasing), for convergence plots.
    pub trace: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_trace_is_monotone() {
        let r = nelder_mead(
            |p: &[f64]| p.iter().map(|x| x * x).sum::<f64>(),
            &[3.0, -2.0, 1.0],
            &NelderMeadOptions::default(),
        );
        assert!(r.trace.windows(2).all(|w| w[1] <= w[0] + 1e-15));
        assert_eq!(r.evaluations, r.trace.len());
    }
}
