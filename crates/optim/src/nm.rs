//! Nelder–Mead downhill simplex minimization.

use serde::{Deserialize, Serialize};

use crate::OptimResult;

/// Options for [`nelder_mead`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NelderMeadOptions {
    /// Maximum objective evaluations.
    pub max_evaluations: usize,
    /// Convergence tolerance on the simplex's value spread.
    pub value_tolerance: f64,
    /// Initial simplex step added to each coordinate of the start point.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_evaluations: 2_000,
            value_tolerance: 1e-10,
            initial_step: 0.25,
        }
    }
}

/// Minimizes `f` from `x0` with the Nelder–Mead simplex method
/// (reflection/expansion/contraction/shrink with the standard
/// coefficients 1, 2, ½, ½).
///
/// # Panics
///
/// Panics if `x0` is empty.
///
/// # Example
///
/// ```
/// use fq_optim::{nelder_mead, NelderMeadOptions};
///
/// let r = nelder_mead(|p: &[f64]| (p[0] - 0.5).abs(), &[3.0], &NelderMeadOptions::default());
/// assert!((r.best_params[0] - 0.5).abs() < 1e-3);
/// ```
pub fn nelder_mead(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    options: &NelderMeadOptions,
) -> OptimResult {
    assert!(!x0.is_empty(), "nelder-mead needs at least one parameter");
    let dim = x0.len();
    let mut evaluations = 0usize;
    let mut trace: Vec<f64> = Vec::new();
    let mut best_so_far = f64::INFINITY;
    let mut eval = |p: &[f64], evaluations: &mut usize, trace: &mut Vec<f64>| -> f64 {
        let v = f(p);
        *evaluations += 1;
        if v < best_so_far {
            best_so_far = v;
        }
        trace.push(best_so_far);
        v
    };

    // Initial simplex: x0 plus one step along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(dim + 1);
    let v0 = eval(x0, &mut evaluations, &mut trace);
    simplex.push((x0.to_vec(), v0));
    for d in 0..dim {
        let mut x = x0.to_vec();
        x[d] += options.initial_step;
        let v = eval(&x, &mut evaluations, &mut trace);
        simplex.push((x, v));
    }

    while evaluations < options.max_evaluations {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("objective must be finite"));
        let value_spread = simplex[dim].1 - simplex[0].1;
        // Converged only when both the values AND the vertices have
        // collapsed; vertices straddling a symmetric minimum can have equal
        // values while still being far apart.
        let size = simplex[1..]
            .iter()
            .flat_map(|(x, _)| x.iter().zip(&simplex[0].0).map(|(a, b)| (a - b).abs()))
            .fold(0.0f64, f64::max);
        if value_spread.abs() <= options.value_tolerance && size <= options.value_tolerance.sqrt() {
            break;
        }
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; dim];
        for (x, _) in &simplex[..dim] {
            for (c, xi) in centroid.iter_mut().zip(x) {
                *c += xi / dim as f64;
            }
        }
        let worst = simplex[dim].clone();
        let second_worst_value = simplex[dim - 1].1;

        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&worst.0)
            .map(|(c, w)| c + (c - w))
            .collect();
        let v_reflect = eval(&reflect, &mut evaluations, &mut trace);

        if v_reflect < simplex[0].1 {
            // Try expanding further.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + 2.0 * (c - w))
                .collect();
            let v_expand = eval(&expand, &mut evaluations, &mut trace);
            simplex[dim] = if v_expand < v_reflect {
                (expand, v_expand)
            } else {
                (reflect, v_reflect)
            };
        } else if v_reflect < second_worst_value {
            simplex[dim] = (reflect, v_reflect);
        } else {
            // Contract toward the centroid.
            let contract: Vec<f64> = centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + 0.5 * (w - c))
                .collect();
            let v_contract = eval(&contract, &mut evaluations, &mut trace);
            if v_contract < worst.1 {
                simplex[dim] = (contract, v_contract);
            } else {
                // Shrink everything toward the best point.
                let best = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let shrunk: Vec<f64> = best
                        .iter()
                        .zip(&entry.0)
                        .map(|(b, x)| b + 0.5 * (x - b))
                        .collect();
                    let v = eval(&shrunk, &mut evaluations, &mut trace);
                    *entry = (shrunk, v);
                }
            }
        }
    }

    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("objective must be finite"));
    OptimResult {
        best_params: simplex[0].0.clone(),
        best_value: simplex[0].1,
        evaluations,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let r = nelder_mead(
            |p: &[f64]| (p[0] - 2.0).powi(2) + 3.0 * (p[1] - 1.0).powi(2) + 5.0,
            &[-1.0, -1.0],
            &NelderMeadOptions::default(),
        );
        assert!((r.best_params[0] - 2.0).abs() < 1e-4, "{:?}", r.best_params);
        assert!((r.best_params[1] - 1.0).abs() < 1e-4);
        assert!((r.best_value - 5.0).abs() < 1e-7);
    }

    #[test]
    fn minimizes_rosenbrock_reasonably() {
        let rosen = |p: &[f64]| (1.0 - p[0]).powi(2) + 100.0 * (p[1] - p[0] * p[0]).powi(2);
        let r = nelder_mead(
            rosen,
            &[-1.2, 1.0],
            &NelderMeadOptions {
                max_evaluations: 5_000,
                ..NelderMeadOptions::default()
            },
        );
        assert!(r.best_value < 1e-6, "value {}", r.best_value);
    }

    #[test]
    fn respects_evaluation_budget() {
        let r = nelder_mead(
            |p: &[f64]| p[0].sin() + p[1].cos(),
            &[0.0, 0.0],
            &NelderMeadOptions {
                max_evaluations: 50,
                ..NelderMeadOptions::default()
            },
        );
        // Budget may be exceeded only by the evaluations inside one final
        // iteration (at most dim+1 extra).
        assert!(r.evaluations <= 50 + 3);
    }

    #[test]
    fn one_dimensional_works() {
        let r = nelder_mead(
            |p: &[f64]| (p[0] + 4.0).powi(2),
            &[10.0],
            &NelderMeadOptions::default(),
        );
        assert!((r.best_params[0] + 4.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "at least one parameter")]
    fn empty_start_panics() {
        let _ = nelder_mead(|_: &[f64]| 0.0, &[], &NelderMeadOptions::default());
    }
}
