//! Exhaustive 2-D parameter scans — the instrument behind the Fig. 12
//! landscape study, which compares the baseline's blurred landscape with
//! FrozenQubits' sharpened one over a 50×50 `(γ, β)` grid.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// A sampled 2-D objective landscape.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridScan {
    /// Scanned γ values (row axis).
    pub gammas: Vec<f64>,
    /// Scanned β values (column axis).
    pub betas: Vec<f64>,
    /// `values[i][j]` = objective at `(gammas[i], betas[j])`.
    pub values: Vec<Vec<f64>>,
    /// Position `(i, j)` of the minimum.
    pub best_index: (usize, usize),
}

impl GridScan {
    /// The minimizing `(γ, β)` pair.
    #[must_use]
    pub fn best_params(&self) -> (f64, f64) {
        (
            self.gammas[self.best_index.0],
            self.betas[self.best_index.1],
        )
    }

    /// The minimum sampled value.
    #[must_use]
    pub fn best_value(&self) -> f64 {
        self.values[self.best_index.0][self.best_index.1]
    }

    /// Landscape contrast: `max − min` over the grid. The paper's Fig. 12
    /// argument is that noise *blurs* the landscape — the baseline's
    /// contrast collapses while FrozenQubits keeps its gradients sharp.
    #[must_use]
    pub fn contrast(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for row in &self.values {
            for &v in row {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        hi - lo
    }
}

/// Scans `f(γ, β)` over an inclusive `resolution × resolution` grid.
///
/// # Panics
///
/// Panics if `resolution < 2` or a range is reversed.
///
/// # Example
///
/// ```
/// use fq_optim::grid_scan_2d;
///
/// let scan = grid_scan_2d(|g, b| g * g + (b - 1.0).powi(2), (-1.0, 1.0), (0.0, 2.0), 21);
/// let (g, b) = scan.best_params();
/// assert!(g.abs() < 0.11 && (b - 1.0).abs() < 0.11);
/// ```
pub fn grid_scan_2d(
    mut f: impl FnMut(f64, f64) -> f64,
    gamma_range: (f64, f64),
    beta_range: (f64, f64),
    resolution: usize,
) -> GridScan {
    grid_scan_2d_hoisted(|g| g, |&g, b| f(g, b), gamma_range, beta_range, resolution)
}

/// [`grid_scan_2d`] with per-row hoisting: `prepare_row` runs **once per
/// γ row** and its output is handed to `f` for every β point in that row.
///
/// The scan visits points in the same row-major order and with the same
/// strict-improvement tie-breaking as [`grid_scan_2d`], so for any
/// `(prepare_row, f)` factoring of a plain objective the resulting
/// [`GridScan`] is identical — only the redundant per-point recomputation
/// of row-invariant work is gone. The QAOA p = 1 objective is the
/// motivating case: all of its trigonometric structure depends on γ only,
/// so a `resolution²` scan collapses to `resolution` expensive row setups
/// plus cheap per-β assembly (`fq_sim::analytic::PreparedP1::row`).
///
/// # Panics
///
/// Panics if `resolution < 2` or a range is reversed.
///
/// # Example
///
/// ```
/// use fq_optim::grid_scan_2d_hoisted;
///
/// // f(γ, β) = exp(γ) · β — hoist the exp out of the inner loop.
/// let scan = grid_scan_2d_hoisted(f64::exp, |eg, b| eg * b, (0.0, 1.0), (-1.0, 1.0), 11);
/// assert_eq!(scan.best_params(), (1.0, -1.0));
/// ```
pub fn grid_scan_2d_hoisted<R>(
    prepare_row: impl FnMut(f64) -> R,
    mut f: impl FnMut(&R, f64) -> f64,
    gamma_range: (f64, f64),
    beta_range: (f64, f64),
    resolution: usize,
) -> GridScan {
    grid_scan_2d_rows(
        prepare_row,
        |ctx, betas, out| {
            for (o, &b) in out.iter_mut().zip(betas) {
                *o = f(ctx, b);
            }
        },
        gamma_range,
        beta_range,
        resolution,
    )
}

/// The inclusive axis a [`grid_scan_2d`] dimension visits: `resolution`
/// evenly spaced points from `lo` to `hi`, endpoints included — exactly
/// the values the scan evaluates (same arithmetic, bit for bit). Exposed
/// so callers can precompute per-point state, e.g. the β-axis
/// trigonometry shared by every γ row of a lane-kernel scan.
///
/// # Panics
///
/// Panics if `resolution < 2`.
#[must_use]
pub fn grid_axis(lo: f64, hi: f64, resolution: usize) -> Vec<f64> {
    assert!(
        resolution >= 2,
        "grid scan needs at least 2 points per axis"
    );
    (0..resolution)
        .map(|k| lo + (hi - lo) * k as f64 / (resolution - 1) as f64)
        .collect()
}

/// [`grid_scan_2d_hoisted`] with **row-granular** evaluation: instead of
/// one callback per grid point, `eval_row` receives the whole β axis and
/// the row's output slice at once. This is the natural shape for
/// vectorized kernels (`fq_sim::analytic::P1Row::eval_lanes`) that
/// process β points in fixed-width lanes — the scan no longer dictates a
/// point-at-a-time calling convention.
///
/// The grid, visiting order, and strict-improvement tie-breaking are
/// identical to [`grid_scan_2d`]: rows in ascending γ, the minimum taken
/// in row-major order. For any `eval_row` that writes `out[j] = f(ctx,
/// betas[j])`, the resulting [`GridScan`] equals the point-wise scans bit
/// for bit.
///
/// `eval_row` is handed `out` zero-filled and must write every element.
///
/// # Panics
///
/// Panics if `resolution < 2` or a range is reversed.
pub fn grid_scan_2d_rows<R>(
    mut prepare_row: impl FnMut(f64) -> R,
    mut eval_row: impl FnMut(&R, &[f64], &mut [f64]),
    gamma_range: (f64, f64),
    beta_range: (f64, f64),
    resolution: usize,
) -> GridScan {
    check_ranges(gamma_range, beta_range);
    let gammas = grid_axis(gamma_range.0, gamma_range.1, resolution);
    let betas = grid_axis(beta_range.0, beta_range.1, resolution);
    let values = gammas
        .iter()
        .map(|&g| {
            let ctx = prepare_row(g);
            let mut row = vec![0.0f64; resolution];
            eval_row(&ctx, &betas, &mut row);
            row
        })
        .collect();
    assemble(gammas, betas, values)
}

/// [`grid_scan_2d_rows`] with the γ rows fanned across `threads` OS
/// threads. Rows are claimed from an atomic counter, each row is computed
/// independently (γ rows share no state), and the minimum is then reduced
/// **sequentially in row-major order** — so the result is bit-identical
/// to the sequential scan, tie-breaking included, for any thread count
/// (pinned by tests).
///
/// `threads <= 1` (or a resolution of 1 row per thread not being
/// worthwhile) degrades to the sequential path with zero thread overhead.
/// This crate has no ambient thread-count policy; callers pass one in
/// (the pipeline passes `frozenqubits::auto_threads()`, which honors
/// `FQ_THREADS`).
///
/// # Panics
///
/// Panics if `resolution < 2` or a range is reversed.
pub fn grid_scan_2d_rows_par<R>(
    threads: usize,
    prepare_row: impl Fn(f64) -> R + Sync,
    eval_row: impl Fn(&R, &[f64], &mut [f64]) + Sync,
    gamma_range: (f64, f64),
    beta_range: (f64, f64),
    resolution: usize,
) -> GridScan {
    check_ranges(gamma_range, beta_range);
    let workers = threads.min(resolution);
    if workers <= 1 {
        return grid_scan_2d_rows(
            prepare_row,
            |ctx, betas, out| eval_row(ctx, betas, out),
            gamma_range,
            beta_range,
            resolution,
        );
    }
    let gammas = grid_axis(gamma_range.0, gamma_range.1, resolution);
    let betas = grid_axis(beta_range.0, beta_range.1, resolution);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Vec<f64>>>> = (0..resolution).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= resolution {
                    break;
                }
                let ctx = prepare_row(gammas[i]);
                let mut row = vec![0.0f64; resolution];
                eval_row(&ctx, &betas, &mut row);
                *slots[i].lock().expect("row slot lock") = Some(row);
            });
        }
    });
    let values = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("row slot lock")
                .expect("every row index below resolution was claimed")
        })
        .collect();
    assemble(gammas, betas, values)
}

/// The outcome of [`grid_scan_2d_coarse_to_fine`]: the coarse pass, the
/// optional refinement pass, and the winning point across both.
#[derive(Clone, Debug, PartialEq)]
pub struct CoarseToFineScan {
    /// The full-range coarse pass.
    pub coarse: GridScan,
    /// The local refinement pass around the coarse optimum (`None` when
    /// `refine_resolution == 0`).
    pub refine: Option<GridScan>,
    /// The minimizing `(γ, β)` across both passes (coarse wins ties).
    pub best_params: (f64, f64),
    /// The minimum sampled value across both passes.
    pub best_value: f64,
}

impl CoarseToFineScan {
    /// Total objective evaluations spent (the budget the approximate
    /// tiers report in their error model).
    #[must_use]
    pub fn evaluations(&self) -> usize {
        let count = |s: &GridScan| s.gammas.len() * s.betas.len();
        count(&self.coarse) + self.refine.as_ref().map_or(0, count)
    }
}

/// Loop-perforated landscape scan: a coarse full-range pass, then a
/// dense local pass over the ±1-cell neighborhood of the coarse
/// optimum (clamped to the original ranges). This is the `balanced`
/// QoS tier's scan — `coarse² + refine²` evaluations instead of the
/// exact path's `resolution²`, trading global grid density for local
/// density exactly where the landscape minimum sits.
///
/// Both passes run sequentially through [`grid_scan_2d`], so the result
/// is deterministic (and trivially identical across thread counts).
///
/// # Panics
///
/// Panics if `coarse_resolution < 2`, a range is reversed, or
/// `refine_resolution == 1` (0 disables refinement; ≥ 2 scans).
pub fn grid_scan_2d_coarse_to_fine(
    mut f: impl FnMut(f64, f64) -> f64,
    gamma_range: (f64, f64),
    beta_range: (f64, f64),
    coarse_resolution: usize,
    refine_resolution: usize,
) -> CoarseToFineScan {
    grid_scan_2d_coarse_to_fine_with(
        |gr, br, res| grid_scan_2d(&mut f, gr, br, res),
        gamma_range,
        beta_range,
        coarse_resolution,
        refine_resolution,
    )
}

/// [`grid_scan_2d_coarse_to_fine`] generic over how each pass is scanned:
/// `scan_pass(gamma_range, beta_range, resolution)` runs one full pass.
/// This lets callers with a row-granular vectorized objective (the QAOA
/// p = 1 lane kernels) drive both passes through [`grid_scan_2d_rows`]
/// while sharing this driver's window/winner logic — for a `scan_pass`
/// that evaluates the same objective, the result is identical to the
/// point-wise driver.
///
/// # Panics
///
/// Panics if a range is reversed, or on whatever `scan_pass` itself
/// rejects (the built-in scans need `resolution ≥ 2`).
pub fn grid_scan_2d_coarse_to_fine_with(
    mut scan_pass: impl FnMut((f64, f64), (f64, f64), usize) -> GridScan,
    gamma_range: (f64, f64),
    beta_range: (f64, f64),
    coarse_resolution: usize,
    refine_resolution: usize,
) -> CoarseToFineScan {
    let coarse = scan_pass(gamma_range, beta_range, coarse_resolution);
    let mut best_params = coarse.best_params();
    let mut best_value = coarse.best_value();
    let refine = (refine_resolution > 0).then(|| {
        let cell = |range: (f64, f64)| (range.1 - range.0) / (coarse_resolution - 1) as f64;
        let window = |center: f64, range: (f64, f64)| {
            let half = cell(range);
            ((center - half).max(range.0), (center + half).min(range.1))
        };
        let refined = scan_pass(
            window(best_params.0, gamma_range),
            window(best_params.1, beta_range),
            refine_resolution,
        );
        if refined.best_value() < best_value {
            best_params = refined.best_params();
            best_value = refined.best_value();
        }
        refined
    });
    CoarseToFineScan {
        coarse,
        refine,
        best_params,
        best_value,
    }
}

fn check_ranges(gamma_range: (f64, f64), beta_range: (f64, f64)) {
    assert!(
        gamma_range.0 <= gamma_range.1 && beta_range.0 <= beta_range.1,
        "ranges must be ascending"
    );
}

/// Row-major strict-minimum reduction — the shared tie-breaking rule of
/// every scan variant (first strict improvement wins).
fn assemble(gammas: Vec<f64>, betas: Vec<f64>, values: Vec<Vec<f64>>) -> GridScan {
    let mut best = (0usize, 0usize, f64::INFINITY);
    for (i, row) in values.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v < best.2 {
                best = (i, j, v);
            }
        }
    }
    GridScan {
        gammas,
        betas,
        values,
        best_index: (best.0, best.1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_grid_minimum() {
        let scan = grid_scan_2d(
            |g, b| (g - 0.5).powi(2) + (b + 0.5).powi(2),
            (-1.0, 1.0),
            (-1.0, 1.0),
            41,
        );
        let (g, b) = scan.best_params();
        assert!((g - 0.5).abs() < 0.06);
        assert!((b + 0.5).abs() < 0.06);
        assert_eq!(scan.values.len(), 41);
        assert_eq!(scan.values[0].len(), 41);
    }

    #[test]
    fn contrast_measures_spread() {
        let flat = grid_scan_2d(|_, _| 1.0, (0.0, 1.0), (0.0, 1.0), 5);
        assert_eq!(flat.contrast(), 0.0);
        let bowl = grid_scan_2d(|g, b| g + b, (0.0, 1.0), (0.0, 1.0), 5);
        assert_eq!(bowl.contrast(), 2.0);
    }

    #[test]
    fn hoisted_scan_matches_plain_scan_exactly() {
        let f = |g: f64, b: f64| (g * 3.7).sin() * (b + 0.2).cos() + g * b;
        let plain = grid_scan_2d(f, (-1.5, 1.5), (-0.7, 0.7), 17);
        let mut rows = 0usize;
        let hoisted = grid_scan_2d_hoisted(
            |g| {
                rows += 1;
                ((g * 3.7).sin(), g)
            },
            |&(sg, g), b| sg * (b + 0.2).cos() + g * b,
            (-1.5, 1.5),
            (-0.7, 0.7),
            17,
        );
        assert_eq!(plain, hoisted, "hoisting must not change a single bit");
        assert_eq!(rows, 17, "one row setup per γ, not per point");
    }

    #[test]
    fn endpoints_are_included() {
        let scan = grid_scan_2d(|g, _| g, (-2.0, 3.0), (0.0, 1.0), 11);
        assert_eq!(scan.gammas[0], -2.0);
        assert_eq!(*scan.gammas.last().unwrap(), 3.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 points")]
    fn tiny_resolution_panics() {
        let _ = grid_scan_2d(|_, _| 0.0, (0.0, 1.0), (0.0, 1.0), 1);
    }

    /// Bitwise equality of two scans, including `−0.0` vs `+0.0` (which
    /// `f64::==` cannot distinguish).
    fn assert_scan_bits_eq(a: &GridScan, b: &GridScan) {
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.gammas), bits(&b.gammas));
        assert_eq!(bits(&a.betas), bits(&b.betas));
        assert_eq!(a.values.len(), b.values.len());
        for (ra, rb) in a.values.iter().zip(&b.values) {
            assert_eq!(bits(ra), bits(rb));
        }
        assert_eq!(a.best_index, b.best_index);
    }

    #[test]
    fn grid_axis_matches_scan_axes() {
        let scan = grid_scan_2d(|g, b| g + b, (-1.25, 2.125), (0.375, 0.875), 23);
        let g_axis = grid_axis(-1.25, 2.125, 23);
        let b_axis = grid_axis(0.375, 0.875, 23);
        assert_eq!(scan.gammas, g_axis);
        assert_eq!(scan.betas, b_axis);
        assert_eq!(g_axis[0], -1.25);
        assert_eq!(*g_axis.last().unwrap(), 2.125);
    }

    fn test_objective(g: f64, b: f64) -> f64 {
        (g * 3.7).sin() * (b + 0.2).cos() + g * b
    }

    #[test]
    fn rows_scan_matches_pointwise_scan_exactly() {
        let plain = grid_scan_2d(test_objective, (-1.5, 1.5), (-0.7, 0.7), 17);
        let rows = grid_scan_2d_rows(
            |g| g,
            |&g, betas, out| {
                for (o, &b) in out.iter_mut().zip(betas) {
                    *o = test_objective(g, b);
                }
            },
            (-1.5, 1.5),
            (-0.7, 0.7),
            17,
        );
        assert_scan_bits_eq(&plain, &rows);
    }

    #[test]
    fn rows_eval_receives_the_beta_axis() {
        let expected = grid_axis(-0.7, 0.7, 9);
        let _ = grid_scan_2d_rows(
            |g| g,
            |_, betas, out| {
                assert_eq!(betas, expected.as_slice());
                assert_eq!(out.len(), betas.len());
            },
            (-1.5, 1.5),
            (-0.7, 0.7),
            9,
        );
    }

    #[test]
    fn parallel_rows_scan_is_bit_identical_for_any_thread_count() {
        let sequential = grid_scan_2d_rows(
            |g| g,
            |&g, betas, out| {
                for (o, &b) in out.iter_mut().zip(betas) {
                    *o = test_objective(g, b);
                }
            },
            (-1.5, 1.5),
            (-0.7, 0.7),
            19,
        );
        for threads in [1, 2, 3, 8, 64] {
            let par = grid_scan_2d_rows_par(
                threads,
                |g| g,
                |&g, betas, out| {
                    for (o, &b) in out.iter_mut().zip(betas) {
                        *o = test_objective(g, b);
                    }
                },
                (-1.5, 1.5),
                (-0.7, 0.7),
                19,
            );
            assert_scan_bits_eq(&sequential, &par);
        }
    }

    #[test]
    fn coarse_to_fine_refines_toward_the_true_minimum() {
        // Bowl with the minimum off-grid for the coarse pass.
        let f = |g: f64, b: f64| (g - 0.437).powi(2) + (b + 0.291).powi(2);
        let scan = grid_scan_2d_coarse_to_fine(f, (-1.0, 1.0), (-1.0, 1.0), 7, 5);
        assert!(scan.refine.is_some());
        assert_eq!(scan.evaluations(), 7 * 7 + 5 * 5);
        // The refinement must do at least as well as the coarse pass...
        assert!(scan.best_value <= scan.coarse.best_value());
        // ...and land strictly closer than a coarse cell.
        let (g, b) = scan.best_params;
        assert!((g - 0.437).abs() < 2.0 / 6.0);
        assert!((b + 0.291).abs() < 2.0 / 6.0);

        // Refinement disabled: pure coarse pass.
        let coarse_only = grid_scan_2d_coarse_to_fine(f, (-1.0, 1.0), (-1.0, 1.0), 7, 0);
        assert!(coarse_only.refine.is_none());
        assert_eq!(coarse_only.best_params, coarse_only.coarse.best_params());
        assert_eq!(coarse_only.evaluations(), 49);
    }

    #[test]
    fn coarse_to_fine_with_rows_pass_matches_the_pointwise_driver() {
        let pointwise = grid_scan_2d_coarse_to_fine(test_objective, (-1.5, 1.5), (-0.7, 0.7), 9, 5);
        let rows = grid_scan_2d_coarse_to_fine_with(
            |gr, br, res| {
                grid_scan_2d_rows(
                    |g| g,
                    |&g, betas, out| {
                        for (o, &b) in out.iter_mut().zip(betas) {
                            *o = test_objective(g, b);
                        }
                    },
                    gr,
                    br,
                    res,
                )
            },
            (-1.5, 1.5),
            (-0.7, 0.7),
            9,
            5,
        );
        assert_eq!(pointwise, rows, "same objective, same passes, same bits");
    }

    #[test]
    fn coarse_to_fine_windows_stay_inside_the_ranges() {
        // Minimum at a corner: the refine window must clamp.
        let f = |g: f64, b: f64| g + b;
        let scan = grid_scan_2d_coarse_to_fine(f, (0.0, 1.0), (0.0, 1.0), 5, 5);
        let refined = scan.refine.unwrap();
        assert!(refined.gammas.iter().all(|&g| (0.0..=1.0).contains(&g)));
        assert!(refined.betas.iter().all(|&b| (0.0..=1.0).contains(&b)));
        assert_eq!(scan.best_params, (0.0, 0.0));
    }

    #[test]
    fn parallel_rows_scan_breaks_ties_in_row_major_order() {
        // A constant landscape ties everywhere: row-major reduction must
        // pick (0, 0) regardless of which thread finished first.
        let par = grid_scan_2d_rows_par(
            4,
            |g| g,
            |_, _, out| out.fill(2.5),
            (0.0, 1.0),
            (0.0, 1.0),
            13,
        );
        assert_eq!(par.best_index, (0, 0));
        assert_eq!(par.best_value(), 2.5);
    }
}
