//! Exhaustive 2-D parameter scans — the instrument behind the Fig. 12
//! landscape study, which compares the baseline's blurred landscape with
//! FrozenQubits' sharpened one over a 50×50 `(γ, β)` grid.

use serde::{Deserialize, Serialize};

/// A sampled 2-D objective landscape.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridScan {
    /// Scanned γ values (row axis).
    pub gammas: Vec<f64>,
    /// Scanned β values (column axis).
    pub betas: Vec<f64>,
    /// `values[i][j]` = objective at `(gammas[i], betas[j])`.
    pub values: Vec<Vec<f64>>,
    /// Position `(i, j)` of the minimum.
    pub best_index: (usize, usize),
}

impl GridScan {
    /// The minimizing `(γ, β)` pair.
    #[must_use]
    pub fn best_params(&self) -> (f64, f64) {
        (
            self.gammas[self.best_index.0],
            self.betas[self.best_index.1],
        )
    }

    /// The minimum sampled value.
    #[must_use]
    pub fn best_value(&self) -> f64 {
        self.values[self.best_index.0][self.best_index.1]
    }

    /// Landscape contrast: `max − min` over the grid. The paper's Fig. 12
    /// argument is that noise *blurs* the landscape — the baseline's
    /// contrast collapses while FrozenQubits keeps its gradients sharp.
    #[must_use]
    pub fn contrast(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for row in &self.values {
            for &v in row {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        hi - lo
    }
}

/// Scans `f(γ, β)` over an inclusive `resolution × resolution` grid.
///
/// # Panics
///
/// Panics if `resolution < 2` or a range is reversed.
///
/// # Example
///
/// ```
/// use fq_optim::grid_scan_2d;
///
/// let scan = grid_scan_2d(|g, b| g * g + (b - 1.0).powi(2), (-1.0, 1.0), (0.0, 2.0), 21);
/// let (g, b) = scan.best_params();
/// assert!(g.abs() < 0.11 && (b - 1.0).abs() < 0.11);
/// ```
pub fn grid_scan_2d(
    mut f: impl FnMut(f64, f64) -> f64,
    gamma_range: (f64, f64),
    beta_range: (f64, f64),
    resolution: usize,
) -> GridScan {
    grid_scan_2d_hoisted(|g| g, |&g, b| f(g, b), gamma_range, beta_range, resolution)
}

/// [`grid_scan_2d`] with per-row hoisting: `prepare_row` runs **once per
/// γ row** and its output is handed to `f` for every β point in that row.
///
/// The scan visits points in the same row-major order and with the same
/// strict-improvement tie-breaking as [`grid_scan_2d`], so for any
/// `(prepare_row, f)` factoring of a plain objective the resulting
/// [`GridScan`] is identical — only the redundant per-point recomputation
/// of row-invariant work is gone. The QAOA p = 1 objective is the
/// motivating case: all of its trigonometric structure depends on γ only,
/// so a `resolution²` scan collapses to `resolution` expensive row setups
/// plus cheap per-β assembly (`fq_sim::analytic::PreparedP1::row`).
///
/// # Panics
///
/// Panics if `resolution < 2` or a range is reversed.
///
/// # Example
///
/// ```
/// use fq_optim::grid_scan_2d_hoisted;
///
/// // f(γ, β) = exp(γ) · β — hoist the exp out of the inner loop.
/// let scan = grid_scan_2d_hoisted(f64::exp, |eg, b| eg * b, (0.0, 1.0), (-1.0, 1.0), 11);
/// assert_eq!(scan.best_params(), (1.0, -1.0));
/// ```
pub fn grid_scan_2d_hoisted<R>(
    mut prepare_row: impl FnMut(f64) -> R,
    mut f: impl FnMut(&R, f64) -> f64,
    gamma_range: (f64, f64),
    beta_range: (f64, f64),
    resolution: usize,
) -> GridScan {
    assert!(
        resolution >= 2,
        "grid scan needs at least 2 points per axis"
    );
    assert!(
        gamma_range.0 <= gamma_range.1 && beta_range.0 <= beta_range.1,
        "ranges must be ascending"
    );
    let axis = |lo: f64, hi: f64| -> Vec<f64> {
        (0..resolution)
            .map(|k| lo + (hi - lo) * k as f64 / (resolution - 1) as f64)
            .collect()
    };
    let gammas = axis(gamma_range.0, gamma_range.1);
    let betas = axis(beta_range.0, beta_range.1);
    let mut values = Vec::with_capacity(resolution);
    let mut best = (0usize, 0usize, f64::INFINITY);
    for (i, &g) in gammas.iter().enumerate() {
        let row_ctx = prepare_row(g);
        let mut row = Vec::with_capacity(resolution);
        for (j, &b) in betas.iter().enumerate() {
            let v = f(&row_ctx, b);
            if v < best.2 {
                best = (i, j, v);
            }
            row.push(v);
        }
        values.push(row);
    }
    GridScan {
        gammas,
        betas,
        values,
        best_index: (best.0, best.1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_grid_minimum() {
        let scan = grid_scan_2d(
            |g, b| (g - 0.5).powi(2) + (b + 0.5).powi(2),
            (-1.0, 1.0),
            (-1.0, 1.0),
            41,
        );
        let (g, b) = scan.best_params();
        assert!((g - 0.5).abs() < 0.06);
        assert!((b + 0.5).abs() < 0.06);
        assert_eq!(scan.values.len(), 41);
        assert_eq!(scan.values[0].len(), 41);
    }

    #[test]
    fn contrast_measures_spread() {
        let flat = grid_scan_2d(|_, _| 1.0, (0.0, 1.0), (0.0, 1.0), 5);
        assert_eq!(flat.contrast(), 0.0);
        let bowl = grid_scan_2d(|g, b| g + b, (0.0, 1.0), (0.0, 1.0), 5);
        assert_eq!(bowl.contrast(), 2.0);
    }

    #[test]
    fn hoisted_scan_matches_plain_scan_exactly() {
        let f = |g: f64, b: f64| (g * 3.7).sin() * (b + 0.2).cos() + g * b;
        let plain = grid_scan_2d(f, (-1.5, 1.5), (-0.7, 0.7), 17);
        let mut rows = 0usize;
        let hoisted = grid_scan_2d_hoisted(
            |g| {
                rows += 1;
                ((g * 3.7).sin(), g)
            },
            |&(sg, g), b| sg * (b + 0.2).cos() + g * b,
            (-1.5, 1.5),
            (-0.7, 0.7),
            17,
        );
        assert_eq!(plain, hoisted, "hoisting must not change a single bit");
        assert_eq!(rows, 17, "one row setup per γ, not per point");
    }

    #[test]
    fn endpoints_are_included() {
        let scan = grid_scan_2d(|g, _| g, (-2.0, 3.0), (0.0, 1.0), 11);
        assert_eq!(scan.gammas[0], -2.0);
        assert_eq!(*scan.gammas.last().unwrap(), 3.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 points")]
    fn tiny_resolution_panics() {
        let _ = grid_scan_2d(|_, _| 0.0, (0.0, 1.0), (0.0, 1.0), 1);
    }
}
