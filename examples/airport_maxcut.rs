//! Max-Cut on an airport-style hub network — the motivating workload of
//! Fig. 1(b): hub airports are hotspots, and freezing them is cheap in
//! state space but huge in CNOT count.
//!
//! This example deliberately sticks to the **deprecated free-function
//! entry point** (`solve_with_sampling`) as the workspace's back-compat
//! proof: the wrapper is a one-liner over the job API and must keep
//! producing identical results. New code should use
//! `frozenqubits::api::JobBuilder` — see `quickstart.rs`.
//!
//! ```text
//! cargo run --release --example airport_maxcut
//! ```
#![allow(deprecated)]

use fq_graphs::powerlaw;
use fq_ising::maxcut::cut_value;
use fq_ising::solve::exact_solve;
use fq_suite::models;
use fq_transpile::Device;
use frozenqubits::{solve_with_sampling, FqError, FrozenQubitsConfig};

fn main() -> Result<(), FqError> {
    // 1. The full 1300-airport network reproduces the Fig. 1(b) statistics.
    // Model construction lives in `fq_suite::models` — the same source
    // the scenario corpus (`suites/core.json`) builds from.
    let network = models::airport_network(1300, 26.49, 7)?;
    let stats = powerlaw::degree_stats(&network);
    println!(
        "airport network: {} nodes, mean degree {:.2}, hub/average ratio {:.1}x, gini {:.2}",
        network.num_nodes(),
        stats.mean,
        stats.hotspot_ratio,
        stats.gini
    );

    // 2. Max-Cut on the 12 busiest airports (a NISQ-sized slice).
    let (model, edges) = models::airport_maxcut(1300, 26.49, 7, 12)?;
    let exact = exact_solve(&model)?;
    let total_weight: f64 = edges.iter().map(|e| e.2).sum();
    println!(
        "\nslice: {} edges; exact optimum energy {} (cut {})",
        edges.len(),
        exact.energy,
        fq_ising::maxcut::cut_from_energy(total_weight, exact.energy)
    );

    // 3. Solve with FrozenQubits sampling on the simulated IBM-Auckland.
    let device = Device::ibm_auckland();
    for m in [0usize, 1, 2] {
        let cfg = FrozenQubitsConfig::with_frozen(m);
        let out = solve_with_sampling(&model, &device, &cfg, 4096)?;
        let cut = cut_value(&edges, &out.best)?;
        println!(
            "m = {m}: best energy {:>6.1} (cut {:>4.1}) frozen {:?} — optimum found: {}",
            out.energy,
            cut,
            out.frozen_qubits,
            (out.energy - exact.energy).abs() < 1e-9,
        );
    }
    Ok(())
}
