//! FrozenQubits at practical scale (§6): a 500-qubit power-law problem on
//! a 50×50 grid device with the optimistic error model, sweeping the
//! number of frozen qubits. Prints the CNOT/SWAP/depth reductions and the
//! relative EPS (Figs. 14–16 in miniature; the full sweeps live in the
//! bench harness).
//!
//! ```text
//! cargo run --release --example practical_scale
//! ```

use fq_circuit::{build_qaoa_circuit, qaoa_cnot_count};
use fq_graphs::{gen, to_ising_pm1};
use fq_sim::log_eps;
use fq_transpile::{compile, CompileOptions, Device};
use frozenqubits::{partition_problem, select_hotspots, FqError, HotspotStrategy};

fn main() -> Result<(), FqError> {
    let n = 500usize;
    let graph = gen::barabasi_albert(n, 1, 1)?;
    let model = to_ising_pm1(&graph, 1);
    let device = Device::grid_2500();
    let options = CompileOptions::level3();

    println!("compiling the {n}-qubit baseline onto the 50x50 grid…");
    let base_qc = build_qaoa_circuit(&model, 1)?;
    let base = compile(&base_qc, &device, options)?;
    let base_eps = log_eps(&base, &device);
    println!(
        "baseline: {} logical CNOTs -> {} compiled (swaps {}), depth {}",
        qaoa_cnot_count(&model, 1),
        base.stats.cnot_count,
        base.swap_count,
        base.stats.depth
    );

    println!("\n m | edge-drop | cnots | rel-cnot | depth | rel-depth | rel-EPS (log10)");
    for m in 1..=6usize {
        let hotspots = select_hotspots(&model, m, &HotspotStrategy::MaxDegree)?;
        let plan = partition_problem(&model, &hotspots, true)?;
        let sub = plan.executed[0].problem.model();
        let qc = build_qaoa_circuit(sub, 1)?;
        let compiled = compile(&qc, &device, options)?;
        let rel_cnot = compiled.stats.cnot_count as f64 / base.stats.cnot_count as f64;
        let rel_depth = compiled.stats.depth as f64 / base.stats.depth as f64;
        let rel_eps_log10 = (log_eps(&compiled, &device) - base_eps) / std::f64::consts::LN_10;
        println!(
            "{:>2} | {:>9} | {:>5} | {:>8.3} | {:>5} | {:>9.3} | {:>+8.2}",
            m,
            model.num_couplings() - sub.num_couplings(),
            compiled.stats.cnot_count,
            rel_cnot,
            compiled.stats.depth,
            rel_depth,
            rel_eps_log10,
        );
    }
    println!("\n(relative EPS grows by orders of magnitude with m, as in Fig. 16)");
    Ok(())
}
