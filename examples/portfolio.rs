//! Portfolio optimization as QAOA (Table 1's finance row): pick assets
//! maximizing return and minimizing correlated risk. The budget penalty
//! yields non-zero linear terms, demonstrating the pipeline **without**
//! spin-flip symmetry — FrozenQubits then runs all `2^m` sub-problems.
//!
//! ```text
//! cargo run --release --example portfolio
//! ```

use fq_ising::solve::exact_solve;
use fq_ising::Qubo;
use frozenqubits::api::{DeviceSpec, JobBuilder};
use frozenqubits::FqError;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() -> Result<(), FqError> {
    // 1. Synthetic market: 10 assets, power-law-ish correlations (one
    //    "index" asset correlated with everything, like a market factor).
    let n = 10usize;
    let budget = 4usize;
    let mut rng = StdRng::seed_from_u64(11);
    let returns: Vec<f64> = (0..n).map(|_| rng.random_range(0.02..0.12)).collect();
    let mut qubo = Qubo::new(n);

    // Objective: minimize −return + risk + λ(Σx − k)².
    let lambda = 0.35;
    for (i, &ri) in returns.iter().enumerate() {
        // −r_i x_i  +  λ(x_i − 2k·x_i)  (from expanding the penalty)
        qubo.set(i, i, -ri + lambda * (1.0 - 2.0 * budget as f64))?;
        for j in (i + 1)..n {
            // Correlated risk: asset 0 is the market factor.
            let sigma = if i == 0 {
                0.08
            } else {
                rng.random_range(0.005..0.03)
            };
            // Penalty cross terms: 2λ x_i x_j.
            qubo.set(i, j, sigma + 2.0 * lambda)?;
        }
    }
    qubo.set_offset(lambda * (budget as f64).powi(2));

    let model = qubo.to_ising();
    println!(
        "portfolio model: {} assets, budget {}, {} couplings, symmetric: {}",
        n,
        budget,
        model.num_couplings(),
        model.has_zero_linear_terms()
    );

    // 2. Exact reference.
    let exact = exact_solve(&model)?;
    let chosen: Vec<usize> = (0..n)
        .filter(|&i| exact.best.spin(i).to_bit() == 1)
        .collect();
    println!("exact optimum {:.4}, assets {:?}", exact.energy, chosen);

    // 3. FrozenQubits with m = 2. The linear terms break symmetry, so all
    //    four sub-problems execute (no pruning) — the honest-cost path.
    for m in [0usize, 2] {
        let spec = JobBuilder::new()
            .ising(model.clone())
            .device(DeviceSpec::IbmHanoi)
            .num_frozen(m)
            .sample(4096)
            .build()?;
        let out = spec.run()?.into_sample()?;
        let picked: Vec<usize> = (0..n).filter(|&i| out.best.spin(i).to_bit() == 1).collect();
        println!(
            "m = {m}: best {:.4} assets {:?} (gap to exact {:.4})",
            out.energy,
            picked,
            out.energy - exact.energy
        );
    }
    Ok(())
}
