//! Portfolio optimization as QAOA (Table 1's finance row): pick assets
//! maximizing return and minimizing correlated risk. The budget penalty
//! yields non-zero linear terms, demonstrating the pipeline **without**
//! spin-flip symmetry — FrozenQubits then runs all `2^m` sub-problems.
//!
//! ```text
//! cargo run --release --example portfolio
//! ```

use fq_ising::solve::exact_solve;
use fq_suite::models;
use frozenqubits::api::{DeviceSpec, JobBuilder};
use frozenqubits::FqError;

fn main() -> Result<(), FqError> {
    // 1. Synthetic market: 10 assets, power-law-ish correlations (one
    //    "index" asset correlated with everything, like a market factor).
    //    The QUBO is built by `fq_suite::models::portfolio_qubo` — the
    //    same constructor behind the `portfolio-n10-b4-frozen2` corpus
    //    scenario in `suites/core.json`.
    let n = 10usize;
    let budget = 4usize;
    let qubo = models::portfolio_qubo(n, budget, 0.35, 11)?;

    let model = qubo.to_ising();
    println!(
        "portfolio model: {} assets, budget {}, {} couplings, symmetric: {}",
        n,
        budget,
        model.num_couplings(),
        model.has_zero_linear_terms()
    );

    // 2. Exact reference.
    let exact = exact_solve(&model)?;
    let chosen: Vec<usize> = (0..n)
        .filter(|&i| exact.best.spin(i).to_bit() == 1)
        .collect();
    println!("exact optimum {:.4}, assets {:?}", exact.energy, chosen);

    // 3. FrozenQubits with m = 2. The linear terms break symmetry, so all
    //    four sub-problems execute (no pruning) — the honest-cost path.
    for m in [0usize, 2] {
        let spec = JobBuilder::new()
            .ising(model.clone())
            .device(DeviceSpec::IbmHanoi)
            .num_frozen(m)
            .sample(4096)
            .build()?;
        let out = spec.run()?.into_sample()?;
        let picked: Vec<usize> = (0..n).filter(|&i| out.best.spin(i).to_bit() == 1).collect();
        println!(
            "m = {m}: best {:.4} assets {:?} (gap to exact {:.4})",
            out.energy,
            picked,
            out.energy - exact.energy
        );
    }
    Ok(())
}
