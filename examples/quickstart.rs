//! Quickstart: freeze the hotspot of a power-law QAOA problem and compare
//! fidelity against the standard-QAOA baseline on a (simulated) IBM
//! machine — through the typed job API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fq_graphs::{gen, powerlaw, to_ising_pm1};
use frozenqubits::api::{DeviceSpec, JobBuilder};
use frozenqubits::FqError;

fn main() -> Result<(), FqError> {
    // 1. A 16-node Barabási–Albert problem graph (the paper's primary
    //    benchmark family) with ±1 edge weights and zero node weights.
    //    The generator error converts straight into `FqError`.
    let graph = gen::barabasi_albert(16, 1, 42)?;
    let model = to_ising_pm1(&graph, 42);
    let stats = powerlaw::degree_stats(&graph);
    println!(
        "problem: {} nodes, {} edges, max degree {} (mean {:.2})",
        graph.num_nodes(),
        graph.num_edges(),
        stats.max,
        stats.mean
    );

    // 2. Compare baseline QAOA vs FrozenQubits (m = 1 and m = 2) on the
    //    IBM-Montreal model, the machine of Figs. 7–11. One JobSpec per
    //    m — validated at build time, serializable for replay.
    for m in [1usize, 2] {
        let spec = JobBuilder::new()
            .ising(model.clone())
            .device(DeviceSpec::IbmMontreal)
            .num_frozen(m)
            .compare()
            .build()?;
        let report = spec.run()?.into_compare()?;
        println!(
            "\n=== FrozenQubits m = {m} (frozen qubits: {:?}) ===",
            report.frozen_qubits
        );
        for s in [&report.baseline, &report.frozen] {
            println!(
                "{:<10} qubits {:>2}  circuits {:>2}  cnots {:>4}  swaps {:>3}  depth {:>4}  ARG {:>7.2}",
                s.label, s.circuit_qubits, s.circuits_executed,
                s.metrics.compiled_cnots, s.metrics.swap_count, s.metrics.depth, s.arg,
            );
        }
        println!(
            "fidelity improvement (ARG ratio): {:.2}x",
            report.improvement
        );
    }
    Ok(())
}
