//! The optimization-landscape study of Fig. 12: scan the approximation
//! ratio over a 50×50 `(γ, β)` grid for the baseline and for FrozenQubits
//! with m = 1, 2 on a 20-qubit power-law graph (IBM-Auckland noise), and
//! write the three landscapes as CSV for plotting.
//!
//! ```text
//! cargo run --release --example landscape
//! ```

use std::fs;
use std::io::Write as _;

use fq_graphs::{gen, to_ising_pm1};
use fq_ising::solve::exact_solve;
use fq_ising::IsingModel;
use fq_optim::grid_scan_2d;
use fq_sim::analytic::term_expectations_p1;
use fq_sim::{fidelity_model, noisy_expectation_from_terms, FidelityModel};
use fq_transpile::{compile, Device};
use frozenqubits::{
    metrics::approximation_ratio, partition_problem, select_hotspots, FqError, FrozenQubitsConfig,
    HotspotStrategy,
};

const RESOLUTION: usize = 50;

fn noisy_ar_landscape(
    model: &IsingModel,
    fidelity: &FidelityModel,
    c_min: f64,
) -> fq_optim::GridScan {
    let half_pi = std::f64::consts::FRAC_PI_2;
    let quarter_pi = std::f64::consts::FRAC_PI_4;
    grid_scan_2d(
        |g, b| {
            let (z, zz) = term_expectations_p1(model, g, b).expect("valid model");
            let ev = noisy_expectation_from_terms(model, &z, &zz, fidelity).expect("valid terms");
            // Negated AR so the scan's "minimum" is the best point.
            -approximation_ratio(ev, c_min)
        },
        (-half_pi, half_pi),
        (-quarter_pi, quarter_pi),
        RESOLUTION,
    )
}

fn write_csv(path: &str, scan: &fq_optim::GridScan) -> std::io::Result<()> {
    let mut f = fs::File::create(path)?;
    writeln!(f, "gamma,beta,ar")?;
    for (i, &g) in scan.gammas.iter().enumerate() {
        for (j, &b) in scan.betas.iter().enumerate() {
            writeln!(f, "{g},{b},{}", -scan.values[i][j])?;
        }
    }
    Ok(())
}

fn main() -> Result<(), FqError> {
    // I/O errors fold into the same FqError as every pipeline error.
    fs::create_dir_all("results")?;
    let graph = gen::barabasi_albert(20, 1, 12)?;
    let parent = to_ising_pm1(&graph, 12);
    let device = Device::ibm_auckland();
    let cfg = FrozenQubitsConfig::default();
    let c_min = exact_solve(&parent)?.energy;
    println!("20-qubit BA graph on IBM-Auckland; C_min = {c_min}");

    // Baseline landscape.
    let qc = fq_circuit::build_qaoa_circuit(&parent, 1)?;
    let compiled = compile(&qc, &device, cfg.compile)?;
    let fid = fidelity_model(&compiled, &device);
    let base = noisy_ar_landscape(&parent, &fid, c_min);
    write_csv("results/fig12_baseline.csv", &base)?;
    println!(
        "baseline:  best AR {:>6.3}, contrast {:>6.3}",
        -base.best_value(),
        base.contrast()
    );

    // FQ landscapes: the representative sub-problem's landscape, with the
    // sub-space's own exact optimum as reference (the paper notes the
    // search spaces are halves/quarters of the original).
    for m in [1usize, 2] {
        let hotspots = select_hotspots(&parent, m, &HotspotStrategy::MaxDegree)?;
        let plan = partition_problem(&parent, &hotspots, true)?;
        let sub = plan.executed[0].problem.model().clone();
        let sub_cmin = exact_solve(&sub)?.energy;
        let sub_qc = fq_circuit::build_qaoa_circuit(&sub, 1)?;
        let sub_compiled = compile(&sub_qc, &device, cfg.compile)?;
        let sub_fid = fidelity_model(&sub_compiled, &device);
        let scan = noisy_ar_landscape(&sub, &sub_fid, sub_cmin);
        write_csv(&format!("results/fig12_fq_m{m}.csv"), &scan)?;
        println!(
            "FQ(m={m}):   best AR {:>6.3}, contrast {:>6.3}",
            -scan.best_value(),
            scan.contrast()
        );
    }
    println!("\nlandscape CSVs written to results/fig12_*.csv");
    println!("(the baseline landscape is flattened by noise; FrozenQubits keeps it sharp)");
    Ok(())
}
