//! Artifact-fidelity acceptance for the tiered template store:
//!
//! * serialize → deserialize → `instantiate` is **byte-identical** to
//!   the in-memory template, across every `LayoutStrategy` ×
//!   `CompileOptions` combination;
//! * a truncated / corrupted / version-skewed on-disk entry is a silent
//!   recompile (a miss), never a panic or a wrong answer;
//! * the tiered store promotes on hit, demotes on eviction, and a
//!   second runner over the same directory serves repeat batches from
//!   its own cache without new misses.
//!
//! (The process-global `compile_invocations()` zero-delta pin for warm
//! starts lives in `tests/warm_start.rs`, which holds a single test so
//! nothing else compiles concurrently; here every assertion uses
//! per-cache counters, which are safe under the parallel test runner.)

use fq_ising::Spin;
use fq_transpile::{CompileOptions, Device, LayoutStrategy};
use frozenqubits::api::{BatchRunner, DeviceSpec, JobBuilder, JobSpec};
use frozenqubits::{
    CompiledTemplate, DiskStore, MemoryStore, ShapeSignature, TemplateArtifact, TemplateKey,
    TieredStore,
};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fq-template-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn frozen_spec(n: usize, seed: u64) -> JobSpec {
    JobBuilder::new()
        .barabasi_albert(n, 1, seed)
        .device(DeviceSpec::IbmMontreal)
        .frozen()
        .build()
        .unwrap()
}

#[test]
fn round_trip_instantiates_byte_identically_across_all_compile_options() {
    // A frozen family: the template is compiled from the `+` branch and
    // edited for the `−` sibling — the exact reuse path a deserialized
    // artifact must reproduce bit for bit.
    let parent = frozen_spec(10, 7).problem.resolve().unwrap();
    let hub = parent.hotspots()[0];
    let plus = parent.freeze(&[(hub, Spin::UP)]).unwrap();
    let minus = parent.freeze(&[(hub, Spin::DOWN)]).unwrap();
    let device = Device::ibm_montreal();

    for layout in [LayoutStrategy::Trivial, LayoutStrategy::NoiseAdaptive] {
        for optimize in [false, true] {
            for layers in [1usize, 2] {
                let options = CompileOptions { layout, optimize };
                let template =
                    CompiledTemplate::compile(plus.model(), layers, &device, options).unwrap();
                let key =
                    TemplateKey::new(ShapeSignature::of(plus.model()), &device, layers, options);
                let artifact = TemplateArtifact::new(key, template.clone());

                // Wire round trip: value equality and canonical bytes.
                let text = artifact.to_json();
                let back = TemplateArtifact::from_json(&text).unwrap();
                assert_eq!(back.template(), &template, "{options:?} p={layers}");
                assert_eq!(back.to_json(), text, "canonical writer");

                // The restored template instantiates the sibling
                // byte-identically to the in-memory one: same routed
                // circuit, same layouts, same schedule, bit for bit.
                let direct = template.edit_for(minus.model()).unwrap();
                let restored = back.template().edit_for(minus.model()).unwrap();
                assert_eq!(restored, direct, "{options:?} p={layers}");
            }
        }
    }
}

#[test]
fn damaged_disk_entries_recompile_silently_with_identical_results() {
    let dir = temp_dir("damage");
    let specs = vec![frozen_spec(10, 3), frozen_spec(12, 3)];

    let seeded = BatchRunner::new().with_cache_dir(&dir).unwrap();
    let reference: Vec<String> = seeded
        .run_all(&specs)
        .unwrap()
        .iter()
        .map(frozenqubits::JobResult::to_json)
        .collect();
    let artifacts: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.to_str().is_some_and(|s| s.ends_with(".fqt.json")))
        .collect();
    assert_eq!(artifacts.len(), seeded.templates_compiled());

    // Three flavors of damage, cycled over the spilled files: truncated,
    // garbage, version-skewed.
    for (i, path) in artifacts.iter().enumerate() {
        let full = std::fs::read_to_string(path).unwrap();
        let damaged = match i % 3 {
            0 => full[..full.len() / 2].to_string(),
            1 => "{]not json".to_string(),
            _ => full.replacen("\"v\":1", "\"v\":99", 1),
        };
        std::fs::write(path, damaged).unwrap();
    }

    // A fresh runner over the damaged directory recompiles every shape
    // (misses, not errors) and produces byte-identical results.
    let recovered = BatchRunner::new().with_cache_dir(&dir).unwrap();
    let results = recovered.run_all(&specs).unwrap();
    for (result, expected) in results.iter().zip(&reference) {
        assert_eq!(&result.to_json(), expected);
    }
    let stats = recovered.cache_stats();
    assert_eq!(
        stats.misses as usize,
        recovered.templates_compiled(),
        "every damaged entry is a miss"
    );
    assert!(stats.spills >= stats.misses, "recompiles re-spill to disk");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_runner_over_the_same_dir_starts_warm() {
    // The per-cache-counter version of the warm-start guarantee (the
    // process-global compile-counter pin is in tests/warm_start.rs).
    let dir = temp_dir("warm");
    let specs = vec![frozen_spec(10, 5), frozen_spec(12, 5), frozen_spec(10, 6)];

    let cold = BatchRunner::new().with_cache_dir(&dir).unwrap();
    let first = cold.run_all(&specs).unwrap();
    assert!(cold.cache_stats().misses > 0, "cold start compiles");

    let warm = BatchRunner::new().with_cache_dir(&dir).unwrap();
    let second = warm.run_all(&specs).unwrap();
    let stats = warm.cache_stats();
    assert_eq!(stats.misses, 0, "warm start never compiles: {stats:?}");
    assert_eq!(
        stats.promotions as usize,
        warm.templates_compiled(),
        "every shape was promoted from the spill tier once"
    );
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.to_json(), b.to_json(), "byte-identical across restarts");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bounded_memory_tier_demotes_and_keeps_serving() {
    let dir = temp_dir("demote");
    let disk = DiskStore::new(&dir).unwrap();
    let store = TieredStore::new(MemoryStore::with_capacity(1), disk);
    let runner = BatchRunner::new().with_store(Box::new(store));
    let specs = vec![frozen_spec(10, 8), frozen_spec(12, 8)];
    let first = runner.run_all(&specs).unwrap();

    let stats = runner.cache_stats();
    assert_eq!(stats.len, 1, "memory bound holds");
    assert!(stats.evictions >= 1, "the second shape demoted the first");
    assert_eq!(stats.spill_len, 2, "both shapes live in the spill tier");

    // Re-running hits: memory for one shape, the spill tier (with
    // promotion) for the other — never a recompile.
    let again = runner.run_all(&specs).unwrap();
    let stats = runner.cache_stats();
    assert_eq!(stats.misses, 2, "still only the two cold compiles");
    assert!(stats.promotions >= 1);
    for (a, b) in first.iter().zip(&again) {
        assert_eq!(a.to_json(), b.to_json());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_exposes_the_warm_transfer_surface() {
    // index() + artifact() + insert_artifact(): the store surface the
    // HTTP endpoints serve, exercised here without a socket.
    let source = BatchRunner::new();
    source.run_all(&[frozen_spec(10, 9)]).unwrap();
    let index = source.cache().index();
    assert_eq!(index.len(), source.templates_compiled());

    let artifact = source.cache().artifact(&index[0].fingerprint).unwrap();
    assert_eq!(artifact.fingerprint(), index[0].fingerprint);

    // A second runner warmed by hand serves the same spec without
    // compiling.
    let target = BatchRunner::new();
    target.cache().insert_artifact(&artifact);
    target.run_all(&[frozen_spec(10, 9)]).unwrap();
    assert_eq!(target.cache_stats().misses, 0, "pushed template serves");
    assert!(source.cache().artifact("0000000000000000").is_none());
}
