//! Property-based tests of the freezing algebra, the crate's load-bearing
//! invariants (Eqs. 2–3 and the §3.7.2 theorem) over randomized models.
//!
//! The offline build has no `proptest`, so each property runs over 128
//! seeded random cases drawn from the same distribution the original
//! proptest strategies described: `n ∈ [2, 9]` variables, up to
//! `n(n−1)/2` random couplings in `[−2, 2]`, optional linear terms in
//! `[−1.5, 1.5]`, a random offset, and a random freeze set.

use fq_ising::symmetry::{is_spin_flip_symmetric, verify_spin_flip_symmetry};
use fq_ising::{enumerate_subproblems, IsingModel, Qubo, Spin, SpinVec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const CASES: u64 = 128;

/// One random Ising model plus a freeze set, mirroring the original
/// proptest `arb_model` strategy.
fn arb_model(rng: &mut StdRng, with_linear: bool) -> (IsingModel, Vec<(usize, Spin)>) {
    let n = rng.random_range(2..=9usize);
    let mut m = IsingModel::new(n);
    let num_couplings = rng.random_range(0..=(n * (n - 1) / 2));
    for _ in 0..num_couplings {
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if i != j {
            m.add_coupling(i, j, rng.random_range(-2.0..2.0))
                .expect("indices in range");
        }
    }
    if with_linear {
        for i in 0..n {
            m.set_linear(i, rng.random_range(-1.5..1.5))
                .expect("index in range");
        }
    }
    m.set_offset(rng.random_range(-3.0..3.0));
    let mut freeze: Vec<(usize, Spin)> = Vec::new();
    for i in 0..n {
        if rng.random::<bool>() && freeze.len() + 1 < n {
            let s = if rng.random::<bool>() {
                Spin::UP
            } else {
                Spin::DOWN
            };
            freeze.push((i, s));
        }
    }
    (m, freeze)
}

fn for_each_case(with_linear: bool, mut check: impl FnMut(IsingModel, Vec<(usize, Spin)>)) {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xF0_2E_E2 ^ case);
        let (model, freeze) = arb_model(&mut rng, with_linear);
        check(model, freeze);
    }
}

/// The fundamental identity: sub-model energies are parent energies.
#[test]
fn freezing_preserves_energy() {
    for_each_case(true, |model, freeze| {
        let frozen = model.freeze(&freeze).expect("valid freeze set");
        let k = frozen.model().num_vars();
        for idx in 0..(1u64 << k) {
            let y = SpinVec::from_index(idx, k);
            let full = frozen.decode(&y).expect("width matches");
            let e_sub = frozen.model().energy(&y).expect("width matches");
            let e_full = model.energy(&full).expect("width matches");
            assert!(
                (e_sub - e_full).abs() < 1e-9,
                "sub {e_sub} vs full {e_full}"
            );
        }
    });
}

/// decode is a right inverse of project on the surviving coordinates.
#[test]
fn decode_project_roundtrip() {
    for_each_case(true, |model, freeze| {
        let frozen = model.freeze(&freeze).expect("valid freeze set");
        let k = frozen.model().num_vars();
        for idx in [0u64, 1, (1 << k) - 1] {
            let y = SpinVec::from_index(idx % (1 << k), k);
            let full = frozen.decode(&y).expect("width matches");
            assert!(frozen.contains(&full).expect("width matches"));
            assert_eq!(frozen.project(&full).expect("width matches"), y);
        }
    });
}

/// The 2^m sub-spaces tile the parent state space exactly once.
#[test]
fn subspaces_partition() {
    for_each_case(false, |model, freeze| {
        if freeze.len() > 3 || model.num_vars() > 7 {
            return;
        }
        let qubits: Vec<usize> = freeze.iter().map(|&(q, _)| q).collect();
        let subs = enumerate_subproblems(&model, &qubits).expect("valid qubits");
        let n = model.num_vars();
        for idx in 0..(1u64 << n) {
            let z = SpinVec::from_index(idx, n);
            let hits = subs
                .iter()
                .filter(|s| s.contains(&z).expect("width"))
                .count();
            assert_eq!(hits, 1);
        }
    });
}

/// §3.7.2: zero linear terms ⟺ C(z) = C(−z) everywhere.
#[test]
fn symmetry_theorem() {
    for_each_case(false, |model, _| {
        assert!(is_spin_flip_symmetric(&model));
        assert!(verify_spin_flip_symmetry(&model).expect("small model"));
    });
}

/// The symmetric-partner identity used by pruning: the +1 branch's
/// energies, bit-flipped, are the −1 branch's energies.
#[test]
fn partner_branches_mirror() {
    for_each_case(false, |model, _| {
        if model.num_vars() < 3 {
            return;
        }
        let hub = model.hotspots()[0];
        let plus = model.freeze(&[(hub, Spin::UP)]).expect("valid");
        let minus = model.freeze(&[(hub, Spin::DOWN)]).expect("valid");
        let k = plus.model().num_vars();
        for idx in 0..(1u64 << k) {
            let y = SpinVec::from_index(idx, k);
            let a = plus.model().energy(&y).expect("width");
            let b = minus.model().energy(&y.flipped()).expect("width");
            assert!((a - b).abs() < 1e-9);
        }
    });
}

/// QUBO ↔ Ising conversions agree on every assignment.
#[test]
fn qubo_ising_equivalence() {
    for_each_case(true, |model, _| {
        if model.num_vars() > 7 {
            return;
        }
        let qubo = Qubo::from_ising(&model);
        let back = qubo.to_ising();
        let n = model.num_vars();
        for idx in 0..(1u64 << n) {
            let z = SpinVec::from_index(idx, n);
            let direct = model.energy(&z).expect("width");
            let via_qubo = qubo.value_of_spins(&z).expect("width");
            let roundtrip = back.energy(&z).expect("width");
            assert!((direct - via_qubo).abs() < 1e-9);
            assert!((direct - roundtrip).abs() < 1e-9);
        }
    });
}

/// Gray-code exact solver agrees with naive enumeration.
#[test]
fn exact_solver_is_exact() {
    for_each_case(true, |model, _| {
        if model.num_vars() > 8 {
            return;
        }
        let sol = fq_ising::solve::exact_solve(&model).expect("small model");
        let n = model.num_vars();
        let mut best = f64::INFINITY;
        for idx in 0..(1u64 << n) {
            best = best.min(model.energy(&SpinVec::from_index(idx, n)).expect("width"));
        }
        assert!((sol.energy - best).abs() < 1e-9);
        assert!((model.energy(&sol.best).expect("width") - sol.energy).abs() < 1e-9);
    });
}
