//! Property-based tests of the freezing algebra, the crate's load-bearing
//! invariants (Eqs. 2–3 and the §3.7.2 theorem) over randomized models.

use fq_ising::symmetry::{is_spin_flip_symmetric, verify_spin_flip_symmetry};
use fq_ising::{enumerate_subproblems, IsingModel, Qubo, Spin, SpinVec};
use proptest::prelude::*;

/// A random Ising model over `n ∈ [2, 9]` variables with optional linear
/// terms, plus a freeze set.
fn arb_model(with_linear: bool) -> impl Strategy<Value = (IsingModel, Vec<(usize, Spin)>)> {
    (2usize..=9).prop_flat_map(move |n| {
        let couplings = proptest::collection::vec(
            (0usize..n, 0usize..n, -2.0f64..2.0),
            0..=(n * (n - 1) / 2),
        );
        let linears = if with_linear {
            proptest::collection::vec(-1.5f64..1.5, n..=n).boxed()
        } else {
            Just(vec![0.0; n]).boxed()
        };
        let offset = -3.0f64..3.0;
        let freeze_mask = proptest::collection::vec(any::<bool>(), n..=n);
        let freeze_spins = proptest::collection::vec(any::<bool>(), n..=n);
        (couplings, linears, offset, freeze_mask, freeze_spins).prop_map(
            move |(cs, hs, off, fmask, fspins)| {
                let mut m = IsingModel::new(n);
                for (i, j, w) in cs {
                    if i != j {
                        m.add_coupling(i, j, w).expect("indices in range");
                    }
                }
                for (i, h) in hs.into_iter().enumerate() {
                    m.set_linear(i, h).expect("index in range");
                }
                m.set_offset(off);
                let mut freeze: Vec<(usize, Spin)> = Vec::new();
                for i in 0..n {
                    if fmask[i] && freeze.len() + 1 < n {
                        freeze.push((i, if fspins[i] { Spin::UP } else { Spin::DOWN }));
                    }
                }
                (m, freeze)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The fundamental identity: sub-model energies are parent energies.
    #[test]
    fn freezing_preserves_energy((model, freeze) in arb_model(true)) {
        let frozen = model.freeze(&freeze).expect("valid freeze set");
        let k = frozen.model().num_vars();
        for idx in 0..(1u64 << k) {
            let y = SpinVec::from_index(idx, k);
            let full = frozen.decode(&y).expect("width matches");
            let e_sub = frozen.model().energy(&y).expect("width matches");
            let e_full = model.energy(&full).expect("width matches");
            prop_assert!((e_sub - e_full).abs() < 1e-9,
                "sub {} vs full {}", e_sub, e_full);
        }
    }

    /// decode is a right inverse of project on the surviving coordinates.
    #[test]
    fn decode_project_roundtrip((model, freeze) in arb_model(true)) {
        let frozen = model.freeze(&freeze).expect("valid freeze set");
        let k = frozen.model().num_vars();
        for idx in [0u64, 1, (1 << k) - 1] {
            let y = SpinVec::from_index(idx % (1 << k), k);
            let full = frozen.decode(&y).expect("width matches");
            prop_assert!(frozen.contains(&full).expect("width matches"));
            prop_assert_eq!(frozen.project(&full).expect("width matches"), y);
        }
    }

    /// The 2^m sub-spaces tile the parent state space exactly once.
    #[test]
    fn subspaces_partition((model, freeze) in arb_model(false)) {
        prop_assume!(freeze.len() <= 3 && model.num_vars() <= 7);
        let qubits: Vec<usize> = freeze.iter().map(|&(q, _)| q).collect();
        let subs = enumerate_subproblems(&model, &qubits).expect("valid qubits");
        let n = model.num_vars();
        for idx in 0..(1u64 << n) {
            let z = SpinVec::from_index(idx, n);
            let hits = subs.iter().filter(|s| s.contains(&z).expect("width")).count();
            prop_assert_eq!(hits, 1);
        }
    }

    /// §3.7.2: zero linear terms ⟺ C(z) = C(−z) everywhere.
    #[test]
    fn symmetry_theorem((model, _) in arb_model(false)) {
        prop_assert!(is_spin_flip_symmetric(&model));
        prop_assert!(verify_spin_flip_symmetry(&model).expect("small model"));
    }

    /// The symmetric-partner identity used by pruning: the +1 branch's
    /// energies, bit-flipped, are the −1 branch's energies.
    #[test]
    fn partner_branches_mirror((model, _) in arb_model(false)) {
        prop_assume!(model.num_vars() >= 3);
        let hub = model.hotspots()[0];
        let plus = model.freeze(&[(hub, Spin::UP)]).expect("valid");
        let minus = model.freeze(&[(hub, Spin::DOWN)]).expect("valid");
        let k = plus.model().num_vars();
        for idx in 0..(1u64 << k) {
            let y = SpinVec::from_index(idx, k);
            let a = plus.model().energy(&y).expect("width");
            let b = minus.model().energy(&y.flipped()).expect("width");
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// QUBO ↔ Ising conversions agree on every assignment.
    #[test]
    fn qubo_ising_equivalence((model, _) in arb_model(true)) {
        prop_assume!(model.num_vars() <= 7);
        let qubo = Qubo::from_ising(&model);
        let back = qubo.to_ising();
        let n = model.num_vars();
        for idx in 0..(1u64 << n) {
            let z = SpinVec::from_index(idx, n);
            let direct = model.energy(&z).expect("width");
            let via_qubo = qubo.value_of_spins(&z).expect("width");
            let roundtrip = back.energy(&z).expect("width");
            prop_assert!((direct - via_qubo).abs() < 1e-9);
            prop_assert!((direct - roundtrip).abs() < 1e-9);
        }
    }

    /// Gray-code exact solver agrees with naive enumeration.
    #[test]
    fn exact_solver_is_exact((model, _) in arb_model(true)) {
        prop_assume!(model.num_vars() <= 8);
        let sol = fq_ising::solve::exact_solve(&model).expect("small model");
        let n = model.num_vars();
        let mut best = f64::INFINITY;
        for idx in 0..(1u64 << n) {
            best = best.min(model.energy(&SpinVec::from_index(idx, n)).expect("width"));
        }
        prop_assert!((sol.energy - best).abs() < 1e-9);
        prop_assert!((model.energy(&sol.best).expect("width") - sol.energy).abs() < 1e-9);
    }
}
