//! End-to-end semantic validation of the transpiler: a circuit compiled
//! through layout + SABRE routing + passes, compacted and simulated, must
//! produce exactly the same expectation values as the closed-form p = 1
//! QAOA formulas on the logical model. This exercises every layer at once:
//! circuit synthesis, layout injectivity, SWAP correctness, final-layout
//! tracking, compaction and the statevector engine.

use fq_circuit::build_qaoa_circuit;
use fq_graphs::{gen, to_ising_pm1};
use fq_ising::IsingModel;
use fq_sim::analytic::expectation_p1;
use fq_sim::run_circuit;
use fq_transpile::{compile, CompileOptions, Device, LayoutStrategy, Topology};

/// Remaps a logical model onto the compact indices of a compiled circuit.
fn remap_model(model: &IsingModel, layout: &[usize], width: usize) -> IsingModel {
    let mut out = IsingModel::new(width);
    for (i, hi) in model.linears() {
        if hi != 0.0 {
            out.set_linear(layout[i], hi).expect("layout in range");
        }
    }
    for ((i, j), jij) in model.couplings() {
        out.set_coupling(layout[i], layout[j], jij)
            .expect("layout in range");
    }
    out.set_offset(model.offset());
    out
}

fn assert_compiled_semantics(model: &IsingModel, device: &Device, options: CompileOptions) {
    let (gamma, beta) = (0.43, 0.77);
    let reference = expectation_p1(model, gamma, beta).expect("valid model");

    let qc = build_qaoa_circuit(model, 1).expect("p=1");
    let bound = qc.bind(&[gamma], &[beta]).expect("bind");
    let compiled = compile(&bound, device, options).expect("compiles");
    let (compact, layout) = compiled.compact();
    assert!(
        compact.num_qubits() <= 20,
        "compact width {}",
        compact.num_qubits()
    );

    let sv = run_circuit(&compact).expect("simulates");
    let remapped = remap_model(model, &layout, compact.num_qubits());
    let measured = sv.expectation_ising(&remapped).expect("width matches");
    assert!(
        (measured - reference).abs() < 1e-9,
        "compiled EV {measured} vs analytic {reference} on {}",
        device.name()
    );
}

fn ba_model(n: usize, seed: u64) -> IsingModel {
    to_ising_pm1(&gen::barabasi_albert(n, 1, seed).unwrap(), seed)
}

#[test]
fn routing_preserves_semantics_on_heavy_hex() {
    for seed in 0..4 {
        let model = ba_model(8, seed);
        assert_compiled_semantics(&model, &Device::ibm_montreal(), CompileOptions::level3());
    }
}

#[test]
fn routing_preserves_semantics_on_grid() {
    let model = ba_model(9, 5);
    let dev = Device::ideal("grid", Topology::grid(4, 4).unwrap());
    assert_compiled_semantics(&model, &dev, CompileOptions::level3());
}

#[test]
fn routing_preserves_semantics_on_a_line() {
    // Worst-case topology: heavy swapping.
    let model = ba_model(7, 6);
    let dev = Device::ideal("line", Topology::linear(7).unwrap());
    assert_compiled_semantics(&model, &dev, CompileOptions::level3());
}

#[test]
fn semantics_hold_without_optimization_passes() {
    let model = ba_model(8, 7);
    let opts = CompileOptions {
        layout: LayoutStrategy::NoiseAdaptive,
        optimize: false,
    };
    assert_compiled_semantics(&model, &Device::ibm_montreal(), opts);
}

#[test]
fn semantics_hold_with_trivial_layout() {
    let model = ba_model(8, 8);
    let opts = CompileOptions {
        layout: LayoutStrategy::Trivial,
        optimize: true,
    };
    assert_compiled_semantics(&model, &Device::ibm_montreal(), opts);
}

#[test]
fn semantics_hold_with_linear_terms() {
    let mut model = ba_model(7, 9);
    model.set_linear(0, 0.6).unwrap();
    model.set_linear(3, -0.4).unwrap();
    assert_compiled_semantics(&model, &Device::ibm_montreal(), CompileOptions::level3());
}

#[test]
fn semantics_hold_on_dense_graphs() {
    // SK-model: all-to-all interactions maximize SWAP pressure.
    let model = to_ising_pm1(&gen::complete(6), 10);
    assert_compiled_semantics(&model, &Device::ibm_montreal(), CompileOptions::level3());
}

#[test]
fn frozen_subproblem_circuits_are_also_faithful() {
    use fq_ising::Spin;
    let parent = ba_model(9, 11);
    let hub = parent.hotspots()[0];
    for s in [Spin::UP, Spin::DOWN] {
        let sub = parent.freeze(&[(hub, s)]).unwrap();
        assert_compiled_semantics(
            sub.model(),
            &Device::ibm_montreal(),
            CompileOptions::level3(),
        );
    }
}
