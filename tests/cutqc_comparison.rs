//! Table 3 integration: FrozenQubits' costs vs the CutQC wire-cutting
//! baseline on the same power-law instances.

use fq_cutqc::plan_cut;
use fq_graphs::{gen, to_ising_pm1};
use frozenqubits::{partition_problem, select_hotspots, HotspotStrategy};

#[test]
fn cutting_powerlaw_graphs_explodes_postprocessing() {
    // Table 3's core claim: on power-law graphs, splitting the problem in
    // half requires severing many hotspot edges, so CutQC's 4^c
    // post-processing dwarfs FrozenQubits' O(2^{m-1}) circuits with *no*
    // exponential reconstruction.
    // A single BA(d=1) draw is a tree and can occasionally be bisected by
    // one lucky edge, so assert the claim over a small suite of seeds.
    let mut total_cuts = 0usize;
    for seed in [1u64, 3, 8] {
        let graph = gen::barabasi_albert(24, 1, seed).unwrap();
        let model = to_ising_pm1(&graph, seed);

        let cut = plan_cut(&model, 12).unwrap();
        let cut_cost = cut.cost();

        let hotspots = select_hotspots(&model, 2, &HotspotStrategy::MaxDegree).unwrap();
        let plan = partition_problem(&model, &hotspots, true).unwrap();

        // FrozenQubits: 2 circuits (m = 2 pruned), zero reconstruction terms.
        assert_eq!(plan.quantum_cost(), 2);
        // CutQC: the reconstruction alone is 4^c with c ≥ 3 on this family.
        assert!(
            cut_cost.num_cuts >= 3,
            "seed {seed}: cuts = {}",
            cut_cost.num_cuts
        );
        assert!(cut_cost.postprocessing_terms_log2 >= 6.0);
        assert!(cut_cost.quantum_circuit_count > plan.quantum_cost() as f64);
        total_cuts += cut_cost.num_cuts;
    }
    assert!(total_cuts >= 12, "suite-wide cuts {total_cuts}");
}

#[test]
fn frozen_subproblems_fit_smaller_devices_like_fragments_do() {
    // Both schemes shrink the circuit width; FrozenQubits by m, CutQC to
    // the fragment capacity. Verify the arithmetic on a 20-node instance.
    let graph = gen::barabasi_albert(20, 1, 6).unwrap();
    let model = to_ising_pm1(&graph, 6);

    let cut = plan_cut(&model, 10).unwrap();
    for frag in cut.fragments() {
        assert!(frag.len() <= 10);
    }

    let hotspots = select_hotspots(&model, 3, &HotspotStrategy::MaxDegree).unwrap();
    let plan = partition_problem(&model, &hotspots, true).unwrap();
    for exec in &plan.executed {
        assert_eq!(exec.problem.model().num_vars(), 17);
    }
}

#[test]
fn cut_count_grows_with_density_but_fq_cost_does_not() {
    let mut cut_counts = Vec::new();
    for d in [1usize, 2, 3] {
        let graph = gen::barabasi_albert(18, d, 7).unwrap();
        let model = to_ising_pm1(&graph, 7);
        cut_counts.push(plan_cut(&model, 9).unwrap().num_cuts());
        // FrozenQubits' circuit count is independent of density.
        let hotspots = select_hotspots(&model, 2, &HotspotStrategy::MaxDegree).unwrap();
        let plan = partition_problem(&model, &hotspots, true).unwrap();
        assert_eq!(plan.quantum_cost(), 2);
    }
    assert!(
        cut_counts[2] > cut_counts[0],
        "denser graphs must need more cuts: {cut_counts:?}"
    );
}
