//! The cluster chaos suite: seeded fault storms over a *live* loopback
//! fleet — three `fq-serve` shards fronted by an `fq-dispatch`
//! dispatcher — driven by `fq-faults` plans.
//!
//! Each storm pins the cluster's core robustness contract:
//!
//! * **Bytes are invariant.** Whatever faults fire — refused dials,
//!   responses truncated after the shard executed, store reads erroring
//!   or returning corrupt artifacts, dropped store writes — every job
//!   that eventually succeeds returns bytes identical to a direct
//!   `BatchRunner` run of the same spec.
//! * **Every async job reaches a terminal state.** A worker panic mid-
//!   execution fails the job; nothing sticks in `running`.
//! * **Retries are bounded by policy** (`rounds × candidates` attempts
//!   per forward, never more) and shed `503`s always advertise
//!   `retry-after`.
//! * **Warm transfer converges once faults stop**: the sentinel still
//!   moves templates to their rendezvous owners after a storage storm.
//! * **Storms are deterministic**: two plans parsed from the same text
//!   agree on the entire injection schedule, so a failing seed can be
//!   replayed exactly (`FQ_FAULT_PLAN` takes the same text).

use std::sync::Arc;
use std::time::{Duration, Instant};

use fq_dispatch::{ring, DispatchConfig, Dispatcher};
use fq_faults::{FaultPlan, FaultSite};
use fq_serve::client::{self, HttpResponse};
use fq_serve::{Server, ServerConfig};
use frozenqubits::api::{BatchRunner, DeviceSpec, JobBuilder, JobSpec};
use serde::json::Value;

/// A frozen job over the fixed problem family `(n, graph_seed)`: the
/// family determines the compiled-template fingerprint, the seed only
/// the optimization run — jobs of one family share one template.
fn frozen(n: usize, graph_seed: u64, seed: u64) -> JobSpec {
    JobBuilder::new()
        .barabasi_albert(n, 1, graph_seed)
        .device(DeviceSpec::IbmMontreal)
        .num_frozen(1)
        .seed(seed)
        .frozen()
        .build()
        .unwrap()
}

/// The first frozen-family graph seed (scanning from `start`) whose
/// routing fingerprint rendezvous-hashes to `want` among `addrs`.
fn family_owned_by(addrs: &[String], want: &str, start: u64) -> (u64, String) {
    (start..start + 96)
        .find_map(|graph_seed| {
            let fp = frozen(10, graph_seed, 0).routing_fingerprint().unwrap();
            (ring::owner(&fp, addrs).map(String::as_str) == Some(want)).then_some((graph_seed, fp))
        })
        .expect("96 families always split across three shards")
}

fn shard(config: ServerConfig) -> (fq_serve::ServerHandle, String) {
    let handle = Server::spawn(config).unwrap();
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn dispatcher(
    shards: Vec<String>,
    tweak: impl FnOnce(&mut DispatchConfig),
) -> (fq_dispatch::DispatchHandle, String) {
    let mut config = DispatchConfig {
        shards,
        ..DispatchConfig::default()
    };
    tweak(&mut config);
    let handle = Dispatcher::spawn(config).unwrap();
    let addr = handle.addr().to_string();
    (handle, addr)
}

/// Reads a `u64` at `path` inside a stats document, `0` when absent.
fn stat_u64(stats: &Value, path: &[&str]) -> u64 {
    let mut node = stats;
    for key in path {
        match node.field(key) {
            Ok(next) => node = next,
            Err(_) => return 0,
        }
    }
    node.as_u64().unwrap_or(0)
}

fn stats(addr: &str) -> Value {
    let response = client::request(addr, "GET", "/v1/stats", None).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    Value::parse(&response.body).unwrap()
}

/// Submits one spec synchronously through the front door, riding out
/// cluster sheds the way a real client would: bounded retries, and
/// every `503` must carry the `retry-after` the shard discipline
/// promises (the sleep is clamped so storms stay fast).
fn submit_with_retry(addr: &str, spec_json: &str, attempts: usize) -> HttpResponse {
    for _ in 0..attempts {
        let response = client::request(addr, "POST", "/v1/jobs", Some(spec_json))
            .expect("the dispatcher itself is not under attack");
        if response.status != 503 {
            return response;
        }
        let advertised = response
            .header("retry-after")
            .and_then(|v| v.parse::<u64>().ok());
        assert!(
            advertised.is_some(),
            "a shed 503 must advertise retry-after: {}",
            response.body
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("job never got through after {attempts} attempts");
}

/// Storm 1 — transport: the dispatcher's every connection pool refuses
/// roughly one dial in three and truncates one response in six *after*
/// the shard executed (the hardest transport fault: the retry may
/// double-execute, which is safe exactly because execution is
/// deterministic). Every job must still come back byte-identical, and
/// the reroute count must stay inside the policy bound.
#[test]
fn a_transport_storm_never_changes_the_result_bytes() {
    let (a, addr_a) = shard(ServerConfig::default());
    let (b, addr_b) = shard(ServerConfig::default());
    let (c, addr_c) = shard(ServerConfig::default());
    let addrs = vec![addr_a.clone(), addr_b.clone(), addr_c.clone()];

    // One family per owner so the storm rakes across all three shards.
    let (seed_a, _) = family_owned_by(&addrs, &addr_a, 0);
    let (seed_b, _) = family_owned_by(&addrs, &addr_b, 0);
    let (seed_c, _) = family_owned_by(&addrs, &addr_c, 0);
    let specs: Vec<JobSpec> = [seed_a, seed_b, seed_c]
        .iter()
        .flat_map(|&family| (0..2).map(move |s| frozen(10, family, s)))
        .collect();
    let expected: Vec<String> = BatchRunner::new()
        .run(&specs)
        .into_iter()
        .map(|r| {
            r.expect("the fault-free reference run is all-success")
                .to_json()
        })
        .collect();

    let plan =
        Arc::new(FaultPlan::parse("seed=1701;dial:refuse:1/3;response:truncate:1/6").unwrap());
    let rounds = 2usize;
    let (front, addr) = dispatcher(addrs.clone(), |config| {
        config.fault_plan = Some(Arc::clone(&plan));
        config.retry_rounds = rounds;
        config.retry_backoff = Duration::from_millis(5);
        config.retry_backoff_cap = Duration::from_millis(50);
        // The sentinel is parked: recovery in this storm is the
        // forwarders' own retry/re-route discipline, nothing else.
        config.sentinel_interval = Duration::from_secs(3600);
    });

    for (i, spec) in specs.iter().enumerate() {
        let response = submit_with_retry(&addr, &spec.to_json(), 30);
        assert_eq!(response.status, 200, "job {i}: {}", response.body);
        assert_eq!(
            response.body, expected[i],
            "job {i}: bytes must survive refused dials and truncated responses"
        );
    }

    // The storm was real (the schedule actually fired), and bounded:
    // each forward makes at most rounds × candidates attempts, so
    // reroutes per forward can never exceed that minus the first try.
    assert!(plan.total_fired() >= 1, "the seeded storm never fired");
    let stats = stats(&addr);
    let forwarded = stat_u64(&stats, &["forward", "forwarded"]);
    let shed = stat_u64(&stats, &["forward", "shed"]);
    let rerouted = stat_u64(&stats, &["forward", "rerouted"]);
    assert!(
        forwarded >= specs.len() as u64,
        "every job eventually forwarded"
    );
    let per_forward_cap = (rounds * addrs.len() - 1) as u64;
    assert!(
        rerouted <= (forwarded + shed) * per_forward_cap,
        "rerouted {rerouted} exceeds the policy bound of {per_forward_cap} per forward \
         ({forwarded} forwarded, {shed} shed)"
    );

    front.shutdown();
    c.shutdown();
    b.shutdown();
    a.shutdown();
}

/// Storm 2 — storage: every shard's template store errors reads,
/// returns corrupt artifacts, and drops its first writes. The store
/// contract (failed read = miss, corrupt = miss, failed write =
/// dropped) turns all of it into recompiles — observable in the miss
/// counters — while result bytes stay identical. Once the fault
/// budgets exhaust, the sentinel's warm transfer converges templates
/// onto their rendezvous owners as if nothing happened.
#[test]
fn a_storage_storm_recompiles_but_never_corrupts_results() {
    const PLAN: &str = "seed=404;store_fetch:read_error:1/2:limit=3;\
                        store_fetch:corrupt:1/3:limit=2;store_insert:write_error:1/1:limit=2";
    let stormy = || ServerConfig {
        fault_plan: Some(Arc::new(FaultPlan::parse(PLAN).unwrap())),
        ..ServerConfig::default()
    };
    let (a, addr_a) = shard(stormy());
    let (b, addr_b) = shard(stormy());
    let (c, addr_c) = shard(stormy());
    let addrs = vec![addr_a.clone(), addr_b.clone(), addr_c.clone()];

    let (seed_a, fp_a) = family_owned_by(&addrs, &addr_a, 0);
    let (seed_b, fp_b) = family_owned_by(&addrs, &addr_b, 0);
    let (seed_c, fp_c) = family_owned_by(&addrs, &addr_c, 0);
    let families = [
        (seed_a, fp_a, addr_a.clone()),
        (seed_b, fp_b, addr_b.clone()),
        (seed_c, fp_c, addr_c.clone()),
    ];
    let specs: Vec<JobSpec> = families
        .iter()
        .flat_map(|&(family, _, _)| (0..2).map(move |s| frozen(10, family, s)))
        .collect();
    let expected: Vec<String> = BatchRunner::new()
        .run(&specs)
        .into_iter()
        .map(|r| r.unwrap().to_json())
        .collect();

    // A fast sentinel: convergence must resume by itself post-storm.
    let (front, addr) = dispatcher(addrs.clone(), |config| {
        config.sentinel_interval = Duration::from_millis(50);
    });

    // The storm: with every first write dropped, the second job of each
    // family recompiles where a healthy store would have hit — and the
    // bytes must not care.
    for (i, spec) in specs.iter().enumerate() {
        let response = client::request(&addr, "POST", "/v1/jobs", Some(&spec.to_json())).unwrap();
        assert_eq!(response.status, 200, "job {i}: {}", response.body);
        assert_eq!(
            response.body, expected[i],
            "job {i}: bytes must survive read errors, corrupt artifacts and dropped writes"
        );
    }
    for (_, _, owner) in &families {
        let misses = stat_u64(&stats(owner), &["cache", "misses"]);
        assert!(
            misses >= 2,
            "{owner}: dropped writes must force a recompile (saw {misses} misses)"
        );
    }

    // Post-storm (write budgets exhausted): one more job per family
    // both re-verifies the bytes and finally persists each template on
    // its owner.
    for (i, &(family, ref fp, ref owner)) in families.iter().enumerate() {
        let response = client::request(
            &addr,
            "POST",
            "/v1/jobs",
            Some(&frozen(10, family, 0).to_json()),
        )
        .unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(response.body, expected[2 * i], "post-storm bytes agree");
        let resident: Vec<String> = client::template_index(owner)
            .unwrap()
            .into_iter()
            .map(|(fingerprint, _)| fingerprint)
            .collect();
        assert!(
            resident.contains(fp),
            "{owner}: once write faults stop, the owner's store must persist {fp}"
        );
    }

    // Warm transfer still works after the storm: compile a family owned
    // by shard B *on shard A*, and let the sentinel move it home.
    let (stray_seed, stray_fp) = family_owned_by(&addrs, &addr_b, seed_b + 1);
    let direct = client::request(
        &addr_a,
        "POST",
        "/v1/jobs",
        Some(&frozen(10, stray_seed, 0).to_json()),
    )
    .unwrap();
    assert_eq!(direct.status, 200, "{}", direct.body);
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let resident: Vec<String> = client::template_index(&addr_b)
            .unwrap()
            .into_iter()
            .map(|(fingerprint, _)| fingerprint)
            .collect();
        if resident.contains(&stray_fp) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "the sentinel never converged {stray_fp} onto its owner {addr_b} after the storm"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    front.shutdown();
    c.shutdown();
    b.shutdown();
    a.shutdown();
}

/// Storm 3 — engine and accept-path faults: the first job each shard's
/// worker executes panics (contained by `catch_unwind`), and some
/// inbound connections stall briefly. Every async job must reach a
/// terminal state (`done` or `failed`, never stuck `running`), the
/// fleet must stay healthy afterwards, and the dispatcher's retention
/// contract (`410` after TTL) must hold end to end.
#[test]
fn a_worker_panic_storm_leaves_every_job_terminal_and_the_fleet_healthy() {
    const PLAN: &str = "seed=9;worker:panic:1/1:limit=1;accept:stall:1/5:ms=25:limit=4";
    let plans: Vec<Arc<FaultPlan>> = (0..3)
        .map(|_| Arc::new(FaultPlan::parse(PLAN).unwrap()))
        .collect();
    let stormy = |plan: &Arc<FaultPlan>| ServerConfig {
        fault_plan: Some(Arc::clone(plan)),
        ..ServerConfig::default()
    };
    let (a, addr_a) = shard(stormy(&plans[0]));
    let (b, addr_b) = shard(stormy(&plans[1]));
    let (c, addr_c) = shard(stormy(&plans[2]));
    let addrs = vec![addr_a.clone(), addr_b.clone(), addr_c.clone()];

    let (seed_a, _) = family_owned_by(&addrs, &addr_a, 0);
    let (seed_b, _) = family_owned_by(&addrs, &addr_b, 0);
    let (seed_c, _) = family_owned_by(&addrs, &addr_c, 0);
    let specs: Vec<JobSpec> = [seed_a, seed_b, seed_c]
        .iter()
        .flat_map(|&family| (0..2).map(move |s| frozen(10, family, s)))
        .collect();
    let expected: Vec<String> = BatchRunner::new()
        .run(&specs)
        .into_iter()
        .map(|r| r.unwrap().to_json())
        .collect();

    let (front, addr) = dispatcher(addrs, |config| {
        config.retry_backoff = Duration::from_millis(5);
        config.sentinel_interval = Duration::from_secs(3600);
    });

    // Submit the whole storm asynchronously, then poll everything to a
    // terminal state: jobs that drew the panic ordinal fail with the
    // injected message, the rest finish — and nothing wedges.
    let ids: Vec<_> = specs
        .iter()
        .map(|spec| client::submit_async(&addr, spec).unwrap())
        .collect();
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut terminal = vec![None::<String>; ids.len()];
    while terminal.iter().any(Option::is_none) {
        assert!(
            Instant::now() < deadline,
            "jobs stuck non-terminal: {terminal:?}"
        );
        for (slot, &id) in terminal.iter_mut().zip(&ids) {
            if slot.is_some() {
                continue;
            }
            let (status, _) = client::poll(&addr, id).unwrap();
            match status.as_str() {
                "done" | "failed" => *slot = Some(status),
                _ => {}
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // Exactly one job per shard drew the first-visit panic; its poll
    // envelope carries the contained panic as the job's error.
    let failed: Vec<usize> = terminal
        .iter()
        .enumerate()
        .filter_map(|(i, s)| (s.as_deref() == Some("failed")).then_some(i))
        .collect();
    assert_eq!(
        failed.len(),
        3,
        "one injected panic per shard must fail exactly one job each: {terminal:?}"
    );
    for &i in &failed {
        let response =
            client::request(&addr, "GET", &format!("/v1/jobs/{}", ids[i]), None).unwrap();
        assert!(
            response.body.contains("injected fault: worker panic"),
            "job {i} failed for an unexpected reason: {}",
            response.body
        );
    }
    for plan in &plans {
        let panics: u64 = plan
            .fired()
            .iter()
            .filter(|(rule, _)| rule.site == FaultSite::Worker)
            .map(|&(_, count)| count)
            .sum();
        assert_eq!(panics, 1, "each shard's panic budget fired exactly once");
    }

    // Containment: every shard is alive, no worker is stuck busy, and a
    // fresh run of each family comes back byte-identical — the panicked
    // worker kept draining.
    for shard_addr in [&addr_a, &addr_b, &addr_c] {
        let healthz = client::request(shard_addr, "GET", "/v1/healthz", None).unwrap();
        assert_eq!(healthz.status, 200, "{shard_addr} must stay alive");
        assert_eq!(
            stat_u64(&stats(shard_addr), &["workers", "busy"]),
            0,
            "{shard_addr}: busy counters must balance across panics"
        );
    }
    for (i, spec) in specs.iter().enumerate() {
        let response = client::request(&addr, "POST", "/v1/jobs", Some(&spec.to_json())).unwrap();
        assert_eq!(response.status, 200, "rerun {i}: {}", response.body);
        assert_eq!(
            response.body, expected[i],
            "rerun {i}: bytes after the storm"
        );
    }
    front.shutdown();

    // Retention end to end: a dispatcher with a tiny TTL answers `410
    // Gone` — not `404`, not the stale result — once a finished job
    // ages out. This is the cluster-level half of the registry's
    // poll-after-expiry contract.
    let (front, addr) = dispatcher(vec![addr_a.clone()], |config| {
        config.job_ttl = Duration::from_millis(100);
        config.sentinel_interval = Duration::from_secs(3600);
    });
    let response = client::request(&addr, "POST", "/v1/jobs", Some(&specs[0].to_json())).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let id = response.header("fq-job-id").unwrap().to_string();
    std::thread::sleep(Duration::from_millis(250));
    let gone = client::request(&addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
    assert_eq!(
        gone.status, 410,
        "expired outcome must answer Gone: {}",
        gone.body
    );
    assert!(gone.body.contains("expired"), "{}", gone.body);

    front.shutdown();
    c.shutdown();
    b.shutdown();
    a.shutdown();
}

/// Storms replay: two plans parsed from the same text agree on the
/// entire injection schedule at every site, and changing the seed
/// changes the storm. This is what makes a chaos failure a bug report
/// instead of a shrug — re-running with the printed plan text re-runs
/// the exact same fault sequence.
#[test]
fn the_same_seed_produces_the_same_storm() {
    for text in [
        "seed=1701;dial:refuse:1/3;response:truncate:1/6",
        "seed=404;store_fetch:read_error:1/2:limit=3;store_fetch:corrupt:1/3:limit=2;\
         store_insert:write_error:1/1:limit=2",
        "seed=9;worker:panic:1/1:limit=1;accept:stall:1/5:ms=25:limit=4",
    ] {
        let first = FaultPlan::parse(text).unwrap();
        let second = FaultPlan::parse(text).unwrap();
        for site in FaultSite::ALL {
            assert_eq!(
                first.preview(site, 256),
                second.preview(site, 256),
                "plans parsed from `{text}` must agree at {site:?}"
            );
        }
    }
    let a = FaultPlan::parse("seed=1;dial:refuse:1/3").unwrap();
    let b = FaultPlan::parse("seed=2;dial:refuse:1/3").unwrap();
    assert_ne!(
        a.preview(FaultSite::Dial, 256),
        b.preview(FaultSite::Dial, 256),
        "a different seed must be a different storm"
    );
}
