//! Executor equivalence: the parallel backend must be a pure scheduling
//! change — every pipeline entry point has to produce **identical**
//! results under `SequentialExecutor` and `ParallelExecutor`.
//!
//! The original tests below run **unchanged** through the deprecated
//! free-function wrappers (the back-compat guarantee); the final test
//! reruns the same workloads through the new job API and demands
//! bit-identical results.
#![allow(deprecated)]

use fq_graphs::{gen, to_ising_pm1};
use fq_ising::IsingModel;
use fq_transpile::Device;
use frozenqubits::{
    compare, plan_execution, run_frozen, solve_with_sampling, Executor, ExecutorKind,
    FrozenQubitsConfig, ParallelExecutor, SequentialExecutor,
};

fn ba(n: usize, seed: u64) -> IsingModel {
    to_ising_pm1(&gen::barabasi_albert(n, 1, seed).unwrap(), seed)
}

fn cfg(m: usize, executor: ExecutorKind) -> FrozenQubitsConfig {
    FrozenQubitsConfig {
        executor,
        ..FrozenQubitsConfig::with_frozen(m)
    }
}

#[test]
fn run_frozen_is_identical_across_backends_for_m_1_2_3() {
    let device = Device::ibm_montreal();
    for m in 1..=3usize {
        let model = ba(12, 20 + m as u64);
        let (seq, seq_hot) =
            run_frozen(&model, &device, &cfg(m, ExecutorKind::Sequential)).unwrap();
        let (par, par_hot) = run_frozen(&model, &device, &cfg(m, ExecutorKind::Parallel)).unwrap();
        assert_eq!(seq_hot, par_hot, "m={m}: frozen qubits differ");
        // Full RunSummary equality: label, arg, ev_*, metrics, params.
        assert_eq!(seq, par, "m={m}: backends disagree");
        assert_eq!(seq.circuits_executed, 1 << (m - 1));
    }
}

#[test]
fn compare_reports_are_identical_across_backends() {
    let device = Device::ibm_montreal();
    let model = ba(12, 31);
    let seq = compare(&model, &device, &cfg(2, ExecutorKind::Sequential)).unwrap();
    let par = compare(&model, &device, &cfg(2, ExecutorKind::Parallel)).unwrap();
    assert_eq!(seq, par);
    assert!(seq.improvement > 0.0);
}

#[test]
fn raw_executor_outcomes_are_identical_and_ordered() {
    let device = Device::ibm_montreal();
    let model = ba(12, 32);
    let config = cfg(3, ExecutorKind::Parallel);
    let plan = plan_execution(&model, &device, &config).unwrap();
    let seq = SequentialExecutor.execute(&plan, &device, &config).unwrap();
    let par = ParallelExecutor::default()
        .execute(&plan, &device, &config)
        .unwrap();
    assert_eq!(seq, par);
    assert_eq!(seq.len(), 4);
    for (i, outcome) in seq.iter().enumerate() {
        assert_eq!(outcome.branch, i, "outcomes must stay in branch order");
        assert_eq!(outcome.weight, 2.0);
    }
    // A fixed thread count is the same backend, only narrower.
    let two = ParallelExecutor::new(2)
        .execute(&plan, &device, &config)
        .unwrap();
    assert_eq!(seq, two);
}

#[test]
fn sampling_solver_is_identical_across_backends() {
    let device = Device::ibm_montreal();
    let model = ba(8, 33);
    let seq = solve_with_sampling(&model, &device, &cfg(2, ExecutorKind::Sequential), 512).unwrap();
    let par = solve_with_sampling(&model, &device, &cfg(2, ExecutorKind::Parallel), 512).unwrap();
    assert_eq!(seq, par);
    assert_eq!(seq.best.len(), 8);
}

#[test]
fn job_api_matches_the_deprecated_wrappers_bit_for_bit() {
    use frozenqubits::{Job, JobKind};

    let device = Device::ibm_montreal();
    for executor in [ExecutorKind::Sequential, ExecutorKind::Parallel] {
        let model = ba(12, 31);
        let config = cfg(2, executor);
        let old = compare(&model, &device, &config).unwrap();
        let new = Job::from_parts(&model, &device, &config, JobKind::Compare)
            .run()
            .unwrap()
            .into_compare()
            .unwrap();
        assert_eq!(old, new, "{executor:?}: compare diverges");

        let sample_model = ba(8, 33);
        let old = solve_with_sampling(&sample_model, &device, &config, 512).unwrap();
        let new = Job::from_parts(
            &sample_model,
            &device,
            &config,
            JobKind::Sample { shots: 512 },
        )
        .run()
        .unwrap()
        .into_sample()
        .unwrap();
        assert_eq!(old, new, "{executor:?}: sampling diverges");
    }
}
