//! The flattened jobs×branches engine's acceptance criteria, on a mixed
//! ≥50-job batch:
//!
//! * parallel batch output is **bit-for-bit identical** to running every
//!   spec sequentially (job order, branch order, first-error-by-index);
//! * errors stay isolated per job;
//! * `templates_compiled()` equals the number of distinct cache keys —
//!   pinned both against `fq_transpile::compile_invocations()` (no
//!   duplicate compiles under concurrency) and against a sequential
//!   reference cache;
//! * cache statistics are exact, and the LRU bound is respected.
//!
//! `compile_invocations()` is process-global, so this file holds a single
//! test (its own process) and measures deltas with nothing else compiling.

use fq_transpile::compile_invocations;
use frozenqubits::api::{
    BackendSpec, BatchRunner, DeviceSpec, GraphWeighting, JobBuilder, JobSpec, ProblemSpec,
};
use frozenqubits::{FqError, FrozenQubitsConfig, JobKind, JobResult, TemplateCache};

/// A frozen job over the fixed problem family `(n, graph_seed)` — jobs
/// sharing a family share one sub-circuit shape regardless of the
/// per-job stochastic seed, which is what the cache amortizes.
fn frozen(n: usize, graph_seed: u64, m: usize, seed: u64) -> JobSpec {
    JobBuilder::new()
        .barabasi_albert(n, 1, graph_seed)
        .device(DeviceSpec::IbmMontreal)
        .num_frozen(m)
        .seed(seed)
        .frozen()
        .build()
        .unwrap()
}

/// ≥50 specs mixing analytic kinds, backends, sampling and deliberate
/// failures.
fn mixed_specs() -> Vec<JobSpec> {
    let mut specs: Vec<JobSpec> = Vec::new();
    // Family A: 10-node power-law, m = 1 and m = 2.
    specs.extend((0..10).map(|s| frozen(10, 4, 1, s)));
    specs.extend((0..6).map(|s| frozen(10, 4, 2, s)));
    // Family B: 12-node power-law, m = 1 and a 4-branch m = 3.
    specs.extend((0..8).map(|s| frozen(12, 4, 1, s)));
    specs.extend((0..4).map(|s| frozen(12, 4, 3, s)));
    // Family C: 8-node power-law — baselines and full compare reports.
    for s in 0..6 {
        specs.push(
            JobBuilder::new()
                .barabasi_albert(8, 1, 2)
                .device(DeviceSpec::IbmMontreal)
                .seed(s)
                .baseline()
                .build()
                .unwrap(),
        );
        specs.push(
            JobBuilder::new()
                .barabasi_albert(8, 1, 2)
                .device(DeviceSpec::IbmMontreal)
                .seed(s)
                .compare()
                .build()
                .unwrap(),
        );
    }
    // The deterministic noise-model backend shares family A's templates.
    specs.extend((0..4).map(|s| JobSpec {
        backend: BackendSpec::NoiseModel,
        ..frozen(10, 4, 1, 100 + s)
    }));
    // End-to-end sampling over family C.
    for s in 0..4 {
        specs.push(
            JobBuilder::new()
                .barabasi_albert(8, 1, 2)
                .device(DeviceSpec::IbmMontreal)
                .seed(s)
                .sample(64)
                .build()
                .unwrap(),
        );
    }
    // A multi-layer job: distinct cache key (layers are part of it).
    specs.push(
        JobBuilder::new()
            .barabasi_albert(8, 1, 2)
            .device(DeviceSpec::IbmMontreal)
            .layers(2)
            .frozen()
            .build()
            .unwrap(),
    );
    // Deliberate failures, smuggled past the builder: freezing more
    // qubits than exist (fails at planning) and an unresolvable graph
    // (fails at materialization).
    specs.push(JobSpec {
        config: FrozenQubitsConfig::with_frozen(99),
        ..frozen(10, 4, 1, 0)
    });
    specs.push(JobSpec {
        config: FrozenQubitsConfig::with_frozen(99),
        ..frozen(12, 4, 1, 3)
    });
    specs.push(JobSpec {
        problem: ProblemSpec::Graph {
            num_nodes: 3,
            edges: vec![(0, 7)],
            weighting: GraphWeighting::Unit,
        },
        device: DeviceSpec::IbmMontreal,
        config: FrozenQubitsConfig::default(),
        backend: BackendSpec::Sim,
        kind: JobKind::Frozen,
    });
    specs
}

/// Units the engine plans for a spec that reaches planning (compare jobs
/// plan a baseline pass and a frozen pass).
fn planned_units(spec: &JobSpec) -> u64 {
    match spec.kind {
        JobKind::Compare => 2,
        _ => 1,
    }
}

#[test]
fn parallel_batch_is_bit_identical_and_compiles_once_per_key() {
    let specs = mixed_specs();
    assert!(specs.len() >= 50, "acceptance demands a ≥50-job batch");

    // — Parallel engine, forced to a real fan-out even on small runners.
    let before = compile_invocations();
    let runner = BatchRunner::new().with_threads(4);
    let parallel = runner.run(&specs);
    let compiled_parallel = compile_invocations() - before;

    // — Sequential reference: one job after another, own shared cache.
    let seq_cache = TemplateCache::new();
    let sequential: Vec<Result<JobResult, FqError>> = specs
        .iter()
        .map(|spec| spec.to_job().and_then(|job| job.run_cached(&seq_cache)))
        .collect();

    // Bit-identical results and isolated per-job errors, in input order.
    assert_eq!(parallel.len(), sequential.len());
    let mut failures = 0usize;
    for (i, (par, seq)) in parallel.iter().zip(&sequential).enumerate() {
        match (par, seq) {
            (Ok(p), Ok(s)) => assert_eq!(p, s, "job {i}: parallel result diverged"),
            (Err(p), Err(s)) => {
                failures += 1;
                assert_eq!(p, s, "job {i}: parallel error diverged");
            }
            other => panic!("job {i}: ok/err disagreement {other:?}"),
        }
    }
    assert_eq!(failures, 3, "exactly the three smuggled specs fail");
    assert!(
        parallel.iter().filter(|r| r.is_ok()).count() >= 50 - 3,
        "failures must not sink healthy jobs"
    );

    // No duplicate compiles under concurrency: the global transpiler
    // counter, the runner's cache and the sequential reference cache all
    // agree on the number of distinct (shape, device, layers, options)
    // keys.
    assert_eq!(compiled_parallel as usize, runner.templates_compiled());
    assert_eq!(runner.templates_compiled(), seq_cache.len());

    // Exact cache statistics: every successfully planned unit performs
    // one cache lookup (each plan here has a single distinct shape);
    // misses are exactly the distinct keys, the rest are hits.
    let stats = runner.cache_stats();
    let lookups: u64 = specs
        .iter()
        .zip(&sequential)
        .map(|(spec, result)| match result {
            // The smuggled failures never reach a cache lookup: resolve
            // and hotspot selection fail before template compilation.
            Err(_) => 0,
            Ok(_) => planned_units(spec),
        })
        .sum();
    assert_eq!(stats.misses as usize, runner.templates_compiled());
    assert_eq!(stats.hits, lookups - stats.misses);
    assert_eq!(stats.evictions, 0, "unbounded cache never evicts");
    assert_eq!(stats.capacity, None);

    // — LRU bound: replay a slice of the batch through a 2-template
    // cache. Results stay bit-identical; residency respects the bound;
    // evictions happen and are counted.
    let bounded_slice: Vec<JobSpec> = specs[..30].to_vec();
    let bounded = BatchRunner::new().with_threads(3).with_cache_capacity(2);
    let bounded_results = bounded.run(&bounded_slice);
    for (i, (b, s)) in bounded_results.iter().zip(&sequential).enumerate() {
        assert_eq!(
            b.as_ref().unwrap(),
            s.as_ref().unwrap(),
            "job {i}: bounded cache changed a result"
        );
    }
    let bstats = bounded.cache_stats();
    assert!(
        bstats.len <= 2,
        "LRU bound violated: {} resident",
        bstats.len
    );
    assert_eq!(bstats.capacity, Some(2));
    assert!(
        bstats.evictions >= 1,
        "3+ distinct keys through a 2-slot cache must evict"
    );
    assert_eq!(
        bstats.misses - bstats.evictions,
        bstats.len as u64,
        "misses, evictions and residency must reconcile exactly"
    );
}
