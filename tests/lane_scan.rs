//! End-to-end bit-identity of the vectorized landscape scan: the lane
//! kernels + row-parallel scan that `optimize_parameters` now runs must
//! reproduce the scalar point-at-a-time hoisted scan — the previous
//! implementation — bit for bit, at production scale (a Barabási–Albert
//! ±1 model like the benchmark's), for any thread count.

use fq_graphs::{gen, to_ising_pm1};
use fq_ising::IsingModel;
use fq_optim::{grid_axis, grid_scan_2d_hoisted, grid_scan_2d_rows_par, GridScan};
use fq_sim::analytic::{BetaTrig, PreparedP1};
use frozenqubits::{auto_threads, optimize_parameters, optimize_parameters_prepared};

const GAMMA: (f64, f64) = (-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2);
const BETA: (f64, f64) = (-std::f64::consts::FRAC_PI_4, std::f64::consts::FRAC_PI_4);

fn bench_model(n: usize, d: usize) -> IsingModel {
    to_ising_pm1(&gen::barabasi_albert(n, d, 11).unwrap(), 11)
}

/// The pre-vectorization scan: scalar `P1Row::at` per point, sequential.
fn scalar_scan(prepared: &PreparedP1<'_>, resolution: usize) -> GridScan {
    grid_scan_2d_hoisted(
        |g| prepared.row(g),
        |row, b| row.at(b),
        GAMMA,
        BETA,
        resolution,
    )
}

/// The vectorized scan as the pipeline runs it: 8-wide lanes, shared
/// β trig, γ rows fanned across `threads`.
fn lane_scan(prepared: &PreparedP1<'_>, resolution: usize, threads: usize) -> GridScan {
    let trig = BetaTrig::new(&grid_axis(BETA.0, BETA.1, resolution));
    grid_scan_2d_rows_par(
        threads,
        |g| prepared.row(g),
        |row, _betas, out| row.eval_lanes::<8>(&trig, out),
        GAMMA,
        BETA,
        resolution,
    )
}

fn assert_scan_bits_eq(a: &GridScan, b: &GridScan, label: &str) {
    assert_eq!(a.best_index, b.best_index, "{label}: best_index");
    for (ra, rb) in a.values.iter().zip(&b.values) {
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(ra), bits(rb), "{label}: row values");
    }
}

#[test]
fn vectorized_scan_is_bit_identical_to_scalar_scan_at_scale() {
    let model = bench_model(96, 3);
    let prepared = PreparedP1::new(&model);
    let scalar = scalar_scan(&prepared, 41);
    for threads in [1, 2, 5, auto_threads()] {
        let vectorized = lane_scan(&prepared, 41, threads);
        assert_scan_bits_eq(&scalar, &vectorized, &format!("{threads} threads"));
    }
}

#[test]
fn vectorized_scan_is_bit_identical_on_small_irregular_grids() {
    // Resolutions not divisible by the lane width exercise the β-tail
    // padding; more threads than rows exercises the claim loop.
    let model = bench_model(24, 2);
    let prepared = PreparedP1::new(&model);
    for resolution in [5, 7, 9, 13] {
        let scalar = scalar_scan(&prepared, resolution);
        for threads in [1, 3, 64] {
            let vectorized = lane_scan(&prepared, resolution, threads);
            assert_scan_bits_eq(
                &scalar,
                &vectorized,
                &format!("res {resolution}, {threads} threads"),
            );
        }
    }
}

#[test]
fn optimize_parameters_prepared_matches_unprepared_entry_point() {
    for (n, d) in [(24, 2), (48, 2)] {
        let model = bench_model(n, d);
        let prepared = PreparedP1::new(&model);
        let via_model = optimize_parameters(&model, 21).unwrap();
        let via_prepared = optimize_parameters_prepared(&prepared, 21).unwrap();
        assert_eq!(via_model.0.to_bits(), via_prepared.0.to_bits(), "γ, n={n}");
        assert_eq!(via_model.1.to_bits(), via_prepared.1.to_bits(), "β, n={n}");
    }
}
