//! The `FQ_THREADS` environment override, in its own process: the
//! variable is process-global state, so these assertions must not share
//! a binary with tests that rely on the default auto thread count.

use frozenqubits::api::{BatchRunner, DeviceSpec, JobBuilder};
use frozenqubits::auto_threads;

#[test]
fn fq_threads_overrides_auto_and_invalid_values_are_ignored() {
    // The runner executing this suite may legitimately export FQ_THREADS
    // itself; establish a clean baseline rather than assuming one.
    std::env::remove_var("FQ_THREADS");
    let hardware = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    assert_eq!(auto_threads(), hardware, "unset: one worker per core");

    std::env::set_var("FQ_THREADS", "3");
    assert_eq!(auto_threads(), 3, "valid override wins");

    // Results must not depend on the override (scheduling only).
    let spec = JobBuilder::new()
        .barabasi_albert(10, 1, 4)
        .device(DeviceSpec::IbmMontreal)
        .num_frozen(2)
        .frozen()
        .build()
        .unwrap();
    let overridden = BatchRunner::new().run(std::slice::from_ref(&spec));
    let pinned = BatchRunner::new()
        .with_threads(1)
        .run(std::slice::from_ref(&spec));
    assert_eq!(overridden[0].as_ref().unwrap(), pinned[0].as_ref().unwrap());

    // 0, garbage and empty values are ignored, not errors.
    for invalid in ["0", "not-a-number", "", "-2"] {
        std::env::set_var("FQ_THREADS", invalid);
        assert_eq!(
            auto_threads(),
            hardware,
            "invalid FQ_THREADS {invalid:?} must fall back to the core count"
        );
    }

    // Whitespace is tolerated around a valid value.
    std::env::set_var("FQ_THREADS", " 2 ");
    assert_eq!(auto_threads(), 2);

    std::env::remove_var("FQ_THREADS");
    assert_eq!(auto_threads(), hardware);
}
