//! Golden tests pinning the JSON wire format of `JobSpec`/`JobResult`
//! **before** any service layer exists: the canonical writer must
//! round-trip byte for byte, and the exact bytes of representative specs
//! are asserted literally so accidental format drift fails loudly.

use frozenqubits::api::{BackendSpec, DeviceSpec, GraphWeighting, JobBuilder, JobSpec};
use frozenqubits::{CircuitMetrics, ExecutorKind, FqError, HotspotStrategy, JobResult, RunSummary};

#[test]
fn default_compare_spec_matches_the_golden_bytes() {
    let spec = JobBuilder::new()
        .barabasi_albert(12, 1, 7)
        .device(DeviceSpec::IbmMontreal)
        .compare()
        .build()
        .unwrap();
    let golden = concat!(
        "{\"v\":1,",
        "\"problem\":{\"type\":\"barabasi_albert\",\"n\":12,\"d\":1,\"seed\":7},",
        "\"device\":\"ibmq_montreal\",",
        "\"config\":{\"num_frozen\":1,\"layers\":1,",
        "\"hotspots\":{\"policy\":\"max_degree\"},\"prune_symmetric\":true,",
        "\"compile\":{\"layout\":\"noise_adaptive\",\"optimize\":true},",
        "\"param_grid\":15,\"seed\":0,\"executor\":{\"kind\":\"parallel\"}},",
        "\"backend\":\"sim\",",
        "\"kind\":{\"type\":\"compare\"}}",
    );
    assert_eq!(spec.to_json(), golden);
    let parsed = JobSpec::from_json(golden).unwrap();
    assert_eq!(parsed, spec);
    assert_eq!(parsed.to_json(), golden, "byte-for-byte round trip");
}

#[test]
fn every_spec_variant_round_trips_byte_for_byte() {
    let mut model = fq_ising::IsingModel::new(5);
    model.set_coupling(0, 4, -1.0).unwrap();
    model.set_coupling(1, 4, 0.5).unwrap();
    model.set_linear(2, 0.125).unwrap();
    model.set_offset(-2.5);

    let mut config = frozenqubits::FrozenQubitsConfig::with_frozen(2);
    config.hotspots = HotspotStrategy::Explicit(vec![4, 0]);
    config.executor = ExecutorKind::Threads(3);
    config.seed = 99;

    let specs = [
        JobBuilder::new()
            .ising(model)
            .device(DeviceSpec::IbmAuckland)
            .config(config)
            .backend(BackendSpec::NoiseModel)
            .compare()
            .build()
            .unwrap(),
        JobBuilder::new()
            .graph(
                4,
                vec![(0, 1), (1, 2), (2, 3), (3, 0)],
                GraphWeighting::Pm1 { seed: 11 },
            )
            .device(DeviceSpec::Grid2500)
            .baseline()
            .build()
            .unwrap(),
        JobBuilder::new()
            .graph(3, vec![(0, 1), (1, 2)], GraphWeighting::Unit)
            .device(DeviceSpec::IbmWashington)
            .frozen()
            .build()
            .unwrap(),
    ];
    for spec in specs {
        let text = spec.to_json();
        let back = JobSpec::from_json(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), text, "byte-for-byte round trip");
    }
}

#[test]
fn handcrafted_result_matches_the_golden_bytes() {
    let result = JobResult::Frozen {
        summary: RunSummary {
            label: "FQ(m=1)".into(),
            circuit_qubits: 11,
            circuits_executed: 1,
            metrics: CircuitMetrics {
                logical_cnots: 20,
                compiled_cnots: 26,
                swap_count: 2,
                depth: 18,
                duration_ns: 3520.5,
            },
            ev_ideal: -7.25,
            ev_noisy: -3.625,
            arg: 0.5,
            log_eps: -1.5,
            params: (0.4, -0.2),
        },
        frozen_qubits: vec![3],
    };
    let golden = concat!(
        "{\"v\":1,\"kind\":\"frozen\",",
        "\"summary\":{\"label\":\"FQ(m=1)\",\"circuit_qubits\":11,",
        "\"circuits_executed\":1,",
        "\"metrics\":{\"logical_cnots\":20,\"compiled_cnots\":26,",
        "\"swap_count\":2,\"depth\":18,\"duration_ns\":3520.5},",
        "\"ev_ideal\":-7.25,\"ev_noisy\":-3.625,\"arg\":0.5,\"log_eps\":-1.5,",
        "\"params\":[0.4,-0.2]},",
        "\"frozen_qubits\":[3]}",
    );
    assert_eq!(result.to_json(), golden);
    let parsed = JobResult::from_json(golden).unwrap();
    assert_eq!(parsed, result);
    assert_eq!(parsed.to_json(), golden);
}

#[test]
fn executed_results_round_trip_for_every_kind() {
    let base = JobBuilder::new()
        .barabasi_albert(8, 1, 5)
        .device(DeviceSpec::IbmMontreal)
        .seed(1);
    let kinds = [
        base.clone().baseline().build().unwrap(),
        base.clone().frozen().build().unwrap(),
        base.clone().compare().build().unwrap(),
        base.sample(256).build().unwrap(),
    ];
    for spec in kinds {
        let result = spec.run().unwrap();
        let text = result.to_json();
        let back = JobResult::from_json(&text).unwrap();
        assert_eq!(back, result, "{} result diverged", result.kind_name());
        assert_eq!(back.to_json(), text, "byte-for-byte round trip");
    }
}

#[test]
fn full_range_u64_seeds_survive_the_wire() {
    // Seeds above 2^53 must not be squeezed through f64.
    let spec = JobBuilder::new()
        .barabasi_albert(8, 1, u64::MAX)
        .device(DeviceSpec::IbmMontreal)
        .seed(u64::MAX - 1)
        .sample(u64::MAX - 2)
        .build()
        .unwrap();
    let text = spec.to_json();
    assert!(
        text.contains("18446744073709551615"),
        "exact digits on the wire"
    );
    let back = JobSpec::from_json(&text).unwrap();
    assert_eq!(back, spec);
    assert_eq!(back.to_json(), text);
}

#[test]
fn corrupt_distribution_widths_error_instead_of_panicking() {
    let text = concat!(
        "{\"v\":1,\"kind\":\"sample\",\"outcome\":{\"best\":\"000\",\"energy\":-1,",
        "\"distribution\":[[\"0101\",3]],\"frozen_qubits\":[]}}",
    );
    assert!(matches!(
        JobResult::from_json(text),
        Err(FqError::Serde(msg)) if msg.contains("spins")
    ));
}

#[test]
fn malformed_documents_are_rejected_with_serde_errors() {
    for text in [
        "",
        "{",
        "{\"v\":1}",
        "{\"v\":7,\"kind\":\"baseline\"}",
        "{\"v\":1,\"kind\":\"astrology\"}",
    ] {
        assert!(
            matches!(JobResult::from_json(text), Err(FqError::Serde(_))),
            "`{text}` must fail as a Serde error"
        );
    }
}
