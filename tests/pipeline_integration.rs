//! Cross-crate integration tests of the full FrozenQubits pipeline on the
//! paper's three benchmark families (§4.1), asserting the evaluation's
//! qualitative claims hold end to end — driven through the job API.

use fq_graphs::{gen, to_ising_pm1};
use fq_ising::IsingModel;
use fq_transpile::Device;
use frozenqubits::api::{BatchRunner, DeviceSpec, JobBuilder};
use frozenqubits::{
    metrics::gmean, FrozenQubitsConfig, HotspotStrategy, Job, JobKind, Report, RunSummary,
};

fn ba(n: usize, d: usize, seed: u64) -> IsingModel {
    to_ising_pm1(&gen::barabasi_albert(n, d, seed).unwrap(), seed)
}

fn compare_job(model: &IsingModel, device: &Device, cfg: &FrozenQubitsConfig) -> Report {
    Job::from_parts(model, device, cfg, JobKind::Compare)
        .run()
        .unwrap()
        .into_compare()
        .unwrap()
}

fn frozen_job(model: &IsingModel, device: &Device, cfg: &FrozenQubitsConfig) -> RunSummary {
    Job::from_parts(model, device, cfg, JobKind::Frozen)
        .run()
        .unwrap()
        .into_frozen()
        .unwrap()
        .0
}

#[test]
fn freezing_helps_across_the_ba_suite() {
    // Fig. 8's claim in miniature: over a BA(d=1) suite, FQ(m=1) improves
    // the mean ARG and never increases CNOTs.
    let device = Device::ibm_montreal();
    let cfg = FrozenQubitsConfig::default();
    let mut improvements = Vec::new();
    let mut cx_ratio = Vec::new();
    for n in [8usize, 12, 16, 20] {
        let model = ba(n, 1, n as u64);
        let report = compare_job(&model, &device, &cfg);
        // Exact invariant: freezing strictly removes logical CNOTs.
        assert!(
            report.frozen.metrics.logical_cnots < report.baseline.metrics.logical_cnots,
            "n={n}: freezing must drop edges"
        );
        cx_ratio.push(
            report.frozen.metrics.compiled_cnots as f64
                / report.baseline.metrics.compiled_cnots.max(1) as f64,
        );
        improvements.push(report.improvement);
    }
    // The heuristic router may fluctuate per instance, but across the
    // suite the compiled CNOTs must drop clearly.
    assert!(gmean(&cx_ratio) < 0.9, "compiled CX ratios {cx_ratio:?}");
    let g = gmean(&improvements);
    assert!(g > 1.1, "mean ARG improvement {g} should clearly exceed 1");
}

#[test]
fn baseline_arg_grows_with_problem_size() {
    // Fig. 8: baseline fidelity degrades rapidly with size.
    let arg_of = |n: usize| {
        JobBuilder::new()
            .barabasi_albert(n, 1, 1)
            .device(DeviceSpec::IbmMontreal)
            .baseline()
            .build()
            .unwrap()
            .run()
            .unwrap()
            .into_baseline()
            .unwrap()
            .arg
    };
    let arg_small = arg_of(6);
    let arg_large = arg_of(20);
    assert!(
        arg_large > arg_small,
        "ARG must grow with size: {arg_small} -> {arg_large}"
    );
}

#[test]
fn more_frozen_qubits_cost_exponentially_more_circuits() {
    // §3.8 quantum complexity: 2^{m−1} circuits under pruning.
    let device = Device::ibm_montreal();
    let model = ba(12, 1, 3);
    for m in 1..=3usize {
        let cfg = FrozenQubitsConfig::with_frozen(m);
        let summary = frozen_job(&model, &device, &cfg);
        assert_eq!(summary.circuits_executed, 1 << (m - 1));
        assert_eq!(summary.circuit_qubits, 12 - m);
    }
}

#[test]
fn denser_graphs_see_smaller_gains() {
    // Fig. 10 vs Fig. 8: on denser BA graphs the hotspot carries a smaller
    // fraction of the edges, so the improvement shrinks.
    let device = Device::ibm_montreal();
    let cfg = FrozenQubitsConfig::default();
    let sparse: Vec<f64> = (0..3)
        .map(|s| compare_job(&ba(14, 1, s), &device, &cfg).improvement)
        .collect();
    let dense: Vec<f64> = (0..3)
        .map(|s| compare_job(&ba(14, 3, s), &device, &cfg).improvement)
        .collect();
    assert!(
        gmean(&sparse) > gmean(&dense),
        "sparse {sparse:?} must beat dense {dense:?}"
    );
}

#[test]
fn regular_graphs_still_benefit_modestly() {
    // Fig. 11: 3-regular graphs have no hotspots, yet freezing still drops
    // three edges' worth of CNOTs.
    let device = Device::ibm_montreal();
    let cfg = FrozenQubitsConfig::default();
    let model = to_ising_pm1(&gen::random_regular(12, 3, 2).unwrap(), 2);
    let report = compare_job(&model, &device, &cfg);
    assert!(report.frozen.metrics.compiled_cnots < report.baseline.metrics.compiled_cnots);
    assert!(
        report.improvement > 0.9,
        "improvement {}",
        report.improvement
    );
}

#[test]
fn hotspot_strategy_beats_random_freezing() {
    // The ablation behind §3.5: freezing the max-degree node saves at
    // least as many CNOTs as freezing a random node.
    let device = Device::ibm_montreal();
    let model = ba(16, 1, 9);
    let hotspot_cfg = FrozenQubitsConfig::default();
    let random_cfg = FrozenQubitsConfig {
        hotspots: HotspotStrategy::Random(1234),
        ..FrozenQubitsConfig::default()
    };
    let hot = frozen_job(&model, &device, &hotspot_cfg);
    let rnd = frozen_job(&model, &device, &random_cfg);
    assert!(
        hot.metrics.logical_cnots <= rnd.metrics.logical_cnots,
        "hotspot {} vs random {}",
        hot.metrics.logical_cnots,
        rnd.metrics.logical_cnots
    );
}

#[test]
fn cross_machine_improvement_is_positive_gmean() {
    // Fig. 13 in miniature: the GMEAN improvement across machines > 1 —
    // run as one batch of serializable specs over the whole IBM fleet.
    let ibm_fleet = [
        DeviceSpec::IbmMontreal,
        DeviceSpec::IbmToronto,
        DeviceSpec::IbmMumbai,
        DeviceSpec::IbmAuckland,
        DeviceSpec::IbmHanoi,
        DeviceSpec::IbmCairo,
        DeviceSpec::IbmBrooklyn,
        DeviceSpec::IbmWashington,
    ];
    let specs: Vec<_> = ibm_fleet
        .into_iter()
        .map(|device| {
            JobBuilder::new()
                .barabasi_albert(12, 1, 4)
                .device(device)
                .compare()
                .build()
                .unwrap()
        })
        .collect();
    let improvements: Vec<f64> = BatchRunner::new()
        .run(&specs)
        .into_iter()
        .map(|r| r.unwrap().into_compare().unwrap().improvement)
        .collect();
    assert_eq!(improvements.len(), 8);
    assert!(gmean(&improvements) > 1.0);
}

#[test]
fn sk_model_runs_through_the_pipeline() {
    let device = Device::ibm_montreal();
    let cfg = FrozenQubitsConfig::default();
    let model = to_ising_pm1(&gen::complete(8), 5);
    let report = compare_job(&model, &device, &cfg);
    assert!(report.baseline.arg.is_finite());
    assert!(report.frozen.arg.is_finite());
    assert!(report.frozen.metrics.compiled_cnots < report.baseline.metrics.compiled_cnots);
}
