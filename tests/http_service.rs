//! End-to-end acceptance for the HTTP job service (`fq-serve`):
//!
//! * N concurrent HTTP clients submitting a mixed batch receive
//!   `JobResult` bodies **byte-identical** to `JobResult::to_json()` of
//!   a direct `BatchRunner` run of the same specs;
//! * `/v1/stats` proves cross-client template-cache warming: clients
//!   submitting different jobs of one shape family share compiles;
//! * the async submit → poll flow embeds the same canonical bytes;
//! * job failures surface as structured errors with the same `FqError`
//!   text the engine produces directly;
//! * shard-to-shard warm transfer: a fresh server warmed from a peer
//!   (`warm_from`, or explicit `GET`/`POST /v1/templates`) serves a
//!   repeat batch with **zero** template-cache misses and byte-identical
//!   bodies.

use std::thread;

use fq_serve::{client, Server, ServerConfig};
use frozenqubits::api::{BackendSpec, BatchRunner, DeviceSpec, JobBuilder, JobSpec};
use frozenqubits::FrozenQubitsConfig;
use serde::json::Value;

/// A frozen job over the fixed problem family `(n, graph_seed)`; jobs in
/// one family share a sub-circuit shape, which is what the shared
/// service cache amortizes across clients.
fn frozen(n: usize, graph_seed: u64, m: usize, seed: u64) -> JobSpec {
    JobBuilder::new()
        .barabasi_albert(n, 1, graph_seed)
        .device(DeviceSpec::IbmMontreal)
        .num_frozen(m)
        .seed(seed)
        .frozen()
        .build()
        .unwrap()
}

/// A mixed all-success batch: two freeze depths of one power-law family,
/// compare reports, the noise-model backend, and end-to-end sampling.
fn mixed_specs() -> Vec<JobSpec> {
    let mut specs: Vec<JobSpec> = Vec::new();
    specs.extend((0..4).map(|s| frozen(10, 4, 1, s)));
    specs.extend((0..2).map(|s| frozen(10, 4, 2, s)));
    for s in 0..2 {
        specs.push(
            JobBuilder::new()
                .barabasi_albert(8, 1, 2)
                .device(DeviceSpec::IbmMontreal)
                .seed(s)
                .compare()
                .build()
                .unwrap(),
        );
    }
    // The deterministic noise-model backend shares the family's shape.
    specs.extend((0..2).map(|s| JobSpec {
        backend: BackendSpec::NoiseModel,
        ..frozen(10, 4, 1, 100 + s)
    }));
    for s in 0..2 {
        specs.push(
            JobBuilder::new()
                .barabasi_albert(8, 1, 2)
                .device(DeviceSpec::IbmMontreal)
                .seed(s)
                .sample(64)
                .build()
                .unwrap(),
        );
    }
    specs
}

#[test]
fn concurrent_http_clients_get_byte_identical_results_and_share_the_cache() {
    let specs = mixed_specs();

    // — The reference: one direct BatchRunner pass over the same specs.
    let reference = BatchRunner::new();
    let expected: Vec<String> = reference
        .run(&specs)
        .into_iter()
        .map(|r| r.expect("the mixed batch is all-success").to_json())
        .collect();

    let handle = Server::spawn(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    // — N concurrent clients, interleaved over the spec list (stride
    // N), so every shape family is submitted by several *different*
    // clients: any cache hit below is necessarily cross-client warming.
    const CLIENTS: usize = 4;
    let bodies: Vec<(usize, String)> = thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            let addr = &addr;
            let specs = &specs;
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                for (i, spec) in specs.iter().enumerate().skip(c).step_by(CLIENTS) {
                    let response = client::request(addr, "POST", "/v1/jobs", Some(&spec.to_json()))
                        .expect("sync submission");
                    assert_eq!(response.status, 200, "job {i}: {}", response.body);
                    assert!(
                        response.header("fq-job-id").is_some(),
                        "sync responses carry the job id"
                    );
                    out.push((i, response.body));
                }
                out
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });

    assert_eq!(bodies.len(), specs.len());
    for (i, body) in &bodies {
        assert_eq!(
            body, &expected[*i],
            "job {i}: HTTP body must be byte-identical to the direct BatchRunner result"
        );
    }

    // — /v1/stats: the service cache saw exactly the same key space as
    // the direct run — and hits prove clients warmed each other.
    let direct = reference.cache_stats();
    let stats = client::request(&addr, "GET", "/v1/stats", None).unwrap();
    assert_eq!(stats.status, 200);
    let stats = Value::parse(&stats.body).unwrap();
    let cache = stats.field("cache").unwrap();
    let get = |k: &str| cache.field(k).unwrap().as_u64().unwrap();
    assert_eq!(get("misses"), direct.misses, "same distinct template keys");
    assert_eq!(get("hits"), direct.hits, "same lookup volume");
    assert!(
        get("hits") >= 1,
        "interleaved clients must hit each other's compiled templates"
    );
    assert_eq!(get("evictions"), 0);
    let jobs = stats.field("jobs").unwrap();
    assert_eq!(
        jobs.field("completed").unwrap().as_u64().unwrap(),
        specs.len() as u64
    );
    assert_eq!(jobs.field("failed").unwrap().as_u64().unwrap(), 0);

    // — The async flow embeds the same canonical bytes in the poll
    // envelope.
    let id = client::submit_async(&addr, &specs[0]).unwrap();
    let result = loop {
        let (status, result) = client::poll(&addr, id).unwrap();
        match status.as_str() {
            "done" => break result.unwrap(),
            "failed" => panic!("async job failed"),
            _ => thread::sleep(std::time::Duration::from_millis(10)),
        }
    };
    assert_eq!(result.to_json(), expected[0]);

    // — A failing job produces the engine's own error, structured.
    let smuggled = JobSpec {
        config: FrozenQubitsConfig::with_frozen(99),
        ..frozen(10, 4, 1, 0)
    };
    let direct_err = smuggled.run().unwrap_err();
    let response = client::request(&addr, "POST", "/v1/jobs", Some(&smuggled.to_json())).unwrap();
    assert_eq!(response.status, 422, "{}", response.body);
    let envelope = Value::parse(&response.body).unwrap();
    let error = envelope.field("error").unwrap();
    assert_eq!(
        error.field("kind").unwrap().as_str().unwrap(),
        "too_many_frozen"
    );
    assert_eq!(
        error.field("message").unwrap().as_str().unwrap(),
        direct_err.to_string(),
        "the service surfaces the engine's own error text"
    );

    handle.shutdown();
}

#[test]
fn warm_transfer_makes_a_fresh_shard_serve_without_compiling() {
    // Shard A does the compiling: a mixed batch over three shapes.
    let specs: Vec<JobSpec> = vec![
        frozen(10, 4, 1, 0),
        frozen(10, 4, 2, 0),
        frozen(12, 4, 1, 0),
    ];
    let a = Server::spawn(ServerConfig::default()).unwrap();
    let addr_a = a.addr().to_string();
    let expected: Vec<String> = specs
        .iter()
        .map(|spec| {
            let response =
                client::request(&addr_a, "POST", "/v1/jobs", Some(&spec.to_json())).unwrap();
            assert_eq!(response.status, 200, "{}", response.body);
            response.body
        })
        .collect();

    // A's template index lists one artifact per distinct shape, and
    // each is fetchable by fingerprint as a self-validating document.
    let index = client::template_index(&addr_a).unwrap();
    assert_eq!(index.len(), 3);
    let artifact = client::fetch_template(&addr_a, &index[0].0).unwrap();
    assert_eq!(artifact.fingerprint(), index[0].0);

    // Shard B boots with `warm_from` pointed at A: the same batch runs
    // with zero cache misses (nothing compiles — every shape arrived
    // over HTTP) and byte-identical bodies.
    let b = Server::spawn(ServerConfig {
        warm_from: Some(addr_a.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr_b = b.addr().to_string();
    for (spec, expected) in specs.iter().zip(&expected) {
        let response = client::request(&addr_b, "POST", "/v1/jobs", Some(&spec.to_json())).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(&response.body, expected, "byte-identical across shards");
    }
    let stats = client::request(&addr_b, "GET", "/v1/stats", None).unwrap();
    let stats = Value::parse(&stats.body).unwrap();
    let cache = stats.field("cache").unwrap();
    assert_eq!(
        cache.field("misses").unwrap().as_u64().unwrap(),
        0,
        "a warmed shard never compiles for the peer's workload"
    );
    assert!(cache.field("hits").unwrap().as_u64().unwrap() >= 3);

    // Shard C is warmed by *push* instead: POST every artifact A holds.
    let c = Server::spawn(ServerConfig::default()).unwrap();
    let addr_c = c.addr().to_string();
    for (fingerprint, _) in &index {
        let artifact = client::fetch_template(&addr_a, fingerprint).unwrap();
        client::push_template(&addr_c, &artifact).unwrap();
    }
    for (spec, expected) in specs.iter().zip(&expected) {
        let response = client::request(&addr_c, "POST", "/v1/jobs", Some(&spec.to_json())).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(&response.body, expected);
    }
    let stats = client::request(&addr_c, "GET", "/v1/stats", None).unwrap();
    let stats = Value::parse(&stats.body).unwrap();
    assert_eq!(
        stats
            .field("cache")
            .unwrap()
            .field("misses")
            .unwrap()
            .as_u64()
            .unwrap(),
        0,
        "pushed templates serve the whole batch"
    );

    c.shutdown();
    b.shutdown();
    a.shutdown();
}
