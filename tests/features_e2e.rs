//! Integration tests of the extension features: QASM export of compiled
//! circuits, readout mitigation stacked on the noisy sampler, the adaptive
//! freeze recommendation feeding the pipeline, and multi-layer QAOA
//! through freezing.

use fq_circuit::{build_qaoa_circuit, to_qasm};
use fq_graphs::{gen, to_ising_pm1};
use fq_ising::IsingModel;
use fq_sim::{sample_noisy, NoisySamplerConfig, ReadoutMitigator};
use fq_transpile::{compile, CompileOptions, Device};
use frozenqubits::{suggest_num_frozen, FreezeBudget, FrozenQubitsConfig, Job, JobKind};

fn ba(n: usize, seed: u64) -> IsingModel {
    to_ising_pm1(&gen::barabasi_albert(n, 1, seed).unwrap(), seed)
}

#[test]
fn compiled_circuits_export_to_qasm() {
    let model = ba(8, 1);
    let qc = build_qaoa_circuit(&model, 1)
        .unwrap()
        .bind(&[0.4], &[0.8])
        .unwrap();
    let compiled = compile(&qc, &Device::ibm_montreal(), CompileOptions::level3()).unwrap();
    let qasm = to_qasm(&compiled.circuit).unwrap();
    assert!(qasm.starts_with("OPENQASM 2.0;"));
    assert!(qasm.contains("qreg q[27];"), "physical register width");
    assert!(qasm.contains("creg c[8];"), "one clbit per logical qubit");
    // Every CX the stats counted appears in the program (SWAPs stay swap).
    let cx_lines = qasm.lines().filter(|l| l.starts_with("cx ")).count();
    let swap_lines = qasm.lines().filter(|l| l.starts_with("swap ")).count();
    assert_eq!(cx_lines + 3 * swap_lines, compiled.stats.cnot_count);
}

#[test]
fn readout_mitigation_improves_noisy_expectation() {
    // Sample on a machine whose only strong error is readout, then undo it.
    let model = ba(6, 3);
    let topo = fq_transpile::Topology::grid(3, 3).unwrap();
    let device = Device::uniform(
        "readout-only",
        topo,
        1e-6,
        0.08,
        1e9,
        fq_transpile::GateDurations::default(),
    )
    .unwrap();
    let (g, b) = frozenqubits::optimize_parameters(&model, 15).unwrap();
    let qc = build_qaoa_circuit(&model, 1)
        .unwrap()
        .bind(&[g], &[b])
        .unwrap();
    let compiled = compile(&qc, &device, CompileOptions::level3()).unwrap();
    let dist = sample_noisy(
        &compiled,
        &device,
        NoisySamplerConfig {
            shots: 60_000,
            trajectories: 16,
            seed: 1,
        },
    )
    .unwrap();
    let ideal = fq_sim::analytic::expectation_p1(&model, g, b).unwrap();
    let raw = dist.expectation(&model).unwrap();
    let mitigator = ReadoutMitigator::new(vec![0.08; 6]).unwrap();
    let fixed = mitigator.mitigate_expectation(&model, &dist).unwrap();
    assert!(
        (fixed - ideal).abs() < (raw - ideal).abs(),
        "mitigated {fixed} must beat raw {raw} against ideal {ideal}"
    );
    assert!(
        (fixed - ideal).abs() < 0.15,
        "mitigated {fixed} vs ideal {ideal}"
    );
}

#[test]
fn adaptive_recommendation_feeds_the_pipeline() {
    let model = ba(20, 5);
    let rec = suggest_num_frozen(
        &model,
        &FreezeBudget {
            max_quantum_cost: 8,
            min_marginal_gain: 0.01,
            max_frozen: 6,
        },
    )
    .unwrap();
    assert!(rec.m >= 1);
    let cfg = FrozenQubitsConfig::with_frozen(rec.m);
    let (summary, _) = Job::from_parts(&model, &Device::ibm_montreal(), &cfg, JobKind::Frozen)
        .run()
        .unwrap()
        .into_frozen()
        .unwrap();
    assert_eq!(summary.circuits_executed, rec.quantum_cost);
}

#[test]
fn multilayer_qaoa_composes_with_freezing() {
    let model = ba(10, 7);
    let device = Device::ibm_montreal();
    let cfg = FrozenQubitsConfig {
        layers: 2,
        ..FrozenQubitsConfig::default()
    };
    let (s, hotspots) = Job::from_parts(&model, &device, &cfg, JobKind::Frozen)
        .run()
        .unwrap()
        .into_frozen()
        .unwrap();
    assert_eq!(hotspots.len(), 1);
    assert!(s.arg.is_finite());
    // Two layers double the per-edge CNOT count of the sub-circuit.
    assert!(s.metrics.logical_cnots >= 2 * (model.num_couplings() - model.degrees()[hotspots[0]]));
}

#[test]
fn mitigated_sampling_composes_with_frozen_solve() {
    // The full stack: freeze, sample noisily, decode, then mitigate the
    // union distribution's expectation with the device's readout rates.
    let model = ba(8, 11);
    let device = Device::ibm_auckland();
    let out = Job::from_parts(
        &model,
        &device,
        &FrozenQubitsConfig::default(),
        JobKind::Sample { shots: 4096 },
    )
    .run()
    .unwrap()
    .into_sample()
    .unwrap();
    // Mean readout error across the device as a crude per-qubit estimate.
    let eps = (0..model.num_vars()).map(|_| 0.016).collect::<Vec<_>>();
    let mitigator = ReadoutMitigator::new(eps).unwrap();
    let raw = out.distribution.expectation(&model).unwrap();
    let fixed = mitigator
        .mitigate_expectation(&model, &out.distribution)
        .unwrap();
    // Mitigation must push the EV further from zero (undoing attenuation).
    assert!(fixed <= raw + 1e-9, "mitigated {fixed} vs raw {raw}");
}
