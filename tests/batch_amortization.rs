//! The cross-job acceptance criterion: a `BatchRunner` executing several
//! jobs whose sub-problems share one `ShapeSignature` must invoke
//! `fq_transpile::compile` exactly **once for the whole batch** —
//! extending PR 1's per-job `2^m → 1` amortization across jobs.
//!
//! `compile_invocations()` is process-global, so this file holds a single
//! test (its own process) and measures deltas with nothing else compiling.

use fq_transpile::compile_invocations;
use frozenqubits::api::{BackendSpec, BatchRunner, DeviceSpec, JobBuilder, JobSpec};

fn frozen_spec(n: usize, m: usize, seed: u64) -> JobSpec {
    JobBuilder::new()
        .barabasi_albert(n, 1, 4)
        .device(DeviceSpec::IbmMontreal)
        .num_frozen(m)
        .seed(seed)
        .frozen()
        .build()
        .unwrap()
}

#[test]
fn one_compile_per_distinct_shape_across_the_whole_batch() {
    // Two jobs over the same problem with the same m: identical
    // sub-circuit shape, so exactly one compile for both jobs.
    let before = compile_invocations();
    let runner = BatchRunner::new();
    let results = runner.run(&[frozen_spec(12, 1, 0), frozen_spec(12, 1, 1)]);
    assert!(results.iter().all(Result::is_ok));
    assert_eq!(
        compile_invocations() - before,
        1,
        "two same-shape jobs must share one compile"
    );
    assert_eq!(runner.templates_compiled(), 1);

    // A backend change is still the same shape: zero extra compiles.
    let before = compile_invocations();
    let noise_job = JobSpec {
        backend: BackendSpec::NoiseModel,
        ..frozen_spec(12, 1, 2)
    };
    assert!(runner.run(&[noise_job])[0].is_ok());
    assert_eq!(
        compile_invocations() - before,
        0,
        "same shape on another backend must hit the cache"
    );

    // Deeper freezing produces a genuinely different shape: one more
    // compile, shared by all 2^{m-1} branches of that job.
    let before = compile_invocations();
    assert!(runner.run(&[frozen_spec(12, 3, 0)])[0].is_ok());
    assert_eq!(
        compile_invocations() - before,
        1,
        "a new shape compiles exactly once despite 4 branches"
    );
    assert_eq!(runner.templates_compiled(), 2);

    // A compare job adds only the baseline shape (the frozen one is
    // cached): one more compile, and re-running the whole mix adds none.
    let before = compile_invocations();
    let compare_job = JobSpec {
        kind: frozenqubits::JobKind::Compare,
        ..frozen_spec(12, 1, 0)
    };
    assert!(runner.run(std::slice::from_ref(&compare_job))[0].is_ok());
    assert_eq!(
        compile_invocations() - before,
        1,
        "compare reuses the cached frozen shape, compiling only the baseline"
    );

    let before = compile_invocations();
    let rerun = runner.run(&[frozen_spec(12, 1, 7), frozen_spec(12, 3, 7), compare_job]);
    assert!(rerun.iter().all(Result::is_ok));
    assert_eq!(
        compile_invocations() - before,
        0,
        "a warm cache executes the whole batch with zero compiles"
    );
    assert_eq!(runner.templates_compiled(), 3);
}
