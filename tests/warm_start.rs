//! The warm-start acceptance criterion: a second `BatchRunner` pointed
//! at the same `--cache-dir` executes a repeat batch with **zero** new
//! `fq_transpile::compile_invocations()` and byte-identical results —
//! the compile-once/execute-many amortization surviving a process
//! "restart" (modeled here as a fresh runner with a cold memory tier
//! over the same spill directory).
//!
//! `compile_invocations()` is process-global, so this file holds a
//! single test (its own process) and measures deltas with nothing else
//! compiling. Cache-local counterparts of these assertions (safe under
//! the parallel test runner) live in `tests/template_store.rs`.

use fq_transpile::compile_invocations;
use frozenqubits::api::{BatchRunner, DeviceSpec, JobBuilder, JobSpec};

fn mixed_specs() -> Vec<JobSpec> {
    let frozen = |n: usize, m: usize, seed: u64| -> JobSpec {
        JobBuilder::new()
            .barabasi_albert(n, 1, 4)
            .device(DeviceSpec::IbmMontreal)
            .num_frozen(m)
            .seed(seed)
            .frozen()
            .build()
            .unwrap()
    };
    let compare = JobBuilder::new()
        .barabasi_albert(8, 1, 2)
        .device(DeviceSpec::IbmMontreal)
        .compare()
        .build()
        .unwrap();
    let sample = JobBuilder::new()
        .barabasi_albert(8, 1, 2)
        .device(DeviceSpec::IbmMontreal)
        .sample(64)
        .build()
        .unwrap();
    vec![
        frozen(10, 1, 0),
        frozen(10, 1, 1),
        frozen(10, 2, 0),
        frozen(12, 1, 0),
        compare,
        sample,
    ]
}

#[test]
fn restarted_runner_executes_repeat_batches_with_zero_compiles() {
    let dir = std::env::temp_dir().join(format!("fq-warm-start-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let specs = mixed_specs();

    // Cold: every distinct shape pays exactly one compile, and every
    // compile is written through to the spill directory.
    let cold = BatchRunner::new().with_cache_dir(&dir).unwrap();
    let before = compile_invocations();
    let first = cold.run_all(&specs).unwrap();
    let cold_compiles = compile_invocations() - before;
    assert_eq!(
        cold_compiles as usize,
        cold.templates_compiled(),
        "one compile per distinct shape on the cold run"
    );
    assert!(cold_compiles > 0);

    // Warm "restart": a brand-new runner (empty memory tier) over the
    // same directory. Zero compiles, byte-identical output.
    let warm = BatchRunner::new().with_cache_dir(&dir).unwrap();
    let before = compile_invocations();
    let second = warm.run_all(&specs).unwrap();
    assert_eq!(
        compile_invocations() - before,
        0,
        "the restarted runner must serve every shape from disk"
    );
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "results must be byte-identical across the restart"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
