//! End-to-end acceptance for the cluster front door (`fq-dispatch`):
//!
//! * a mixed batch submitted through the dispatcher — sync jobs and the
//!   scatter/merge `/v1/batch` endpoint — produces bodies
//!   **byte-identical** to `JobResult::to_json()` of a direct
//!   `BatchRunner` run of the same specs;
//! * the identity survives killing one shard mid-batch: affected jobs
//!   re-route to the survivor and still return the same bytes;
//! * template-affinity routing is observable: with two shards and
//!   several shape families, each shard compiles **only** the
//!   fingerprints rendezvous hashing assigns to it, and the fleet
//!   compiles each template exactly once;
//! * the sentinel's telemetry-driven warm transfer moves compiled
//!   templates to their rendezvous owners (bearer-token end to end), so
//!   a cold shard serves its keys compile-free.

use std::time::{Duration, Instant};

use fq_dispatch::{ring, DispatchConfig, Dispatcher};
use fq_serve::{client, Server, ServerConfig};
use frozenqubits::api::{BatchRunner, DeviceSpec, JobBuilder, JobSpec};
use serde::json::Value;

/// A frozen job over the fixed problem family `(n, graph_seed)`; the
/// family determines the compiled-template fingerprint, the seed only
/// the optimization run — so jobs of one family share one template.
fn frozen(n: usize, graph_seed: u64, seed: u64) -> JobSpec {
    JobBuilder::new()
        .barabasi_albert(n, 1, graph_seed)
        .device(DeviceSpec::IbmMontreal)
        .num_frozen(1)
        .seed(seed)
        .frozen()
        .build()
        .unwrap()
}

/// The first frozen-family graph seed (scanning from `start`) whose
/// routing fingerprint rendezvous-hashes to `want` among `addrs`.
/// Shard ports are ephemeral, so which shard owns which family varies
/// per run — tests that need "a family owned by shard X" scan for one
/// instead of hardcoding seeds.
fn family_owned_by(addrs: &[String], want: &str, start: u64) -> (u64, String) {
    (start..start + 64)
        .find_map(|graph_seed| {
            let fp = frozen(10, graph_seed, 0).routing_fingerprint().unwrap();
            (ring::owner(&fp, addrs).map(String::as_str) == Some(want)).then_some((graph_seed, fp))
        })
        .expect("64 families always split across two shards")
}

fn shard(config: ServerConfig) -> (fq_serve::ServerHandle, String) {
    let handle = Server::spawn(config).unwrap();
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn dispatcher(
    shards: Vec<String>,
    tweak: impl FnOnce(&mut DispatchConfig),
) -> (fq_dispatch::DispatchHandle, String) {
    let mut config = DispatchConfig {
        shards,
        ..DispatchConfig::default()
    };
    tweak(&mut config);
    let handle = Dispatcher::spawn(config).unwrap();
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn cache_misses(addr: &str) -> u64 {
    let stats = client::request(addr, "GET", "/v1/stats", None).unwrap();
    Value::parse(&stats.body)
        .unwrap()
        .field("cache")
        .unwrap()
        .field("misses")
        .unwrap()
        .as_u64()
        .unwrap()
}

#[test]
fn cluster_results_are_byte_identical_to_a_single_runner() {
    // A mixed batch: two frozen families, compare reports, sampling.
    let mut specs: Vec<JobSpec> = Vec::new();
    specs.extend((0..3).map(|s| frozen(10, 4, s)));
    specs.extend((0..3).map(|s| frozen(10, 5, s)));
    for s in 0..2 {
        specs.push(
            JobBuilder::new()
                .barabasi_albert(8, 1, 2)
                .device(DeviceSpec::IbmMontreal)
                .seed(s)
                .compare()
                .build()
                .unwrap(),
        );
    }
    specs.push(
        JobBuilder::new()
            .barabasi_albert(8, 1, 2)
            .device(DeviceSpec::IbmMontreal)
            .seed(9)
            .sample(64)
            .build()
            .unwrap(),
    );

    let expected: Vec<String> = BatchRunner::new()
        .run(&specs)
        .into_iter()
        .map(|r| r.expect("the mixed batch is all-success").to_json())
        .collect();

    let (a, addr_a) = shard(ServerConfig::default());
    let (b, addr_b) = shard(ServerConfig::default());
    let (front, addr) = dispatcher(vec![addr_a, addr_b], |_| {});

    // — Sync submissions through the front door: the 200 body is the
    // owning shard's response verbatim, which is itself pinned to the
    // direct BatchRunner bytes.
    for (i, spec) in specs.iter().enumerate() {
        let response = client::request(&addr, "POST", "/v1/jobs", Some(&spec.to_json())).unwrap();
        assert_eq!(response.status, 200, "job {i}: {}", response.body);
        assert!(response.header("fq-job-id").is_some());
        assert_eq!(
            response.body, expected[i],
            "job {i}: dispatcher body must be byte-identical to the direct run"
        );
    }

    // — The same batch through scatter/merge, in one request.
    let batch: String = format!(
        "[{}]",
        specs
            .iter()
            .map(JobSpec::to_json)
            .collect::<Vec<_>>()
            .join(",")
    );
    let response = client::request(&addr, "POST", "/v1/batch", Some(&batch)).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let merged = Value::parse(&response.body).unwrap();
    let results = merged.field("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), specs.len(), "merged in job order, one each");
    for (i, element) in results.iter().enumerate() {
        assert_eq!(element.field("status").unwrap().as_u64().unwrap(), 200);
        assert_eq!(
            element.field("body").unwrap().to_json(),
            expected[i],
            "batch element {i}: canonical bytes survive the scatter/merge"
        );
    }

    // — The async flow: the dispatcher's own id space, shard bytes in
    // the poll envelope.
    let id = client::submit_async(&addr, &specs[0]).unwrap();
    let result = loop {
        let (status, result) = client::poll(&addr, id).unwrap();
        match status.as_str() {
            "done" => break result.unwrap(),
            "failed" => panic!("async job failed"),
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    assert_eq!(result.to_json(), expected[0]);

    // — Engine errors relay verbatim, with the shard's own status.
    let smuggled = JobSpec {
        config: frozenqubits::FrozenQubitsConfig::with_frozen(99),
        ..frozen(10, 4, 0)
    };
    let response = client::request(&addr, "POST", "/v1/jobs", Some(&smuggled.to_json())).unwrap();
    assert_eq!(response.status, 422, "{}", response.body);
    let error = Value::parse(&response.body).unwrap();
    assert_eq!(
        error
            .field("error")
            .unwrap()
            .field("kind")
            .unwrap()
            .as_str()
            .unwrap(),
        "too_many_frozen"
    );

    front.shutdown();
    b.shutdown();
    a.shutdown();
}

#[test]
fn killing_a_shard_mid_batch_reroutes_without_changing_bytes() {
    let (a, addr_a) = shard(ServerConfig::default());
    let (b, addr_b) = shard(ServerConfig::default());
    let addrs = vec![addr_a.clone(), addr_b.clone()];

    // One family owned by each shard, so killing A provably affects
    // part of the workload.
    let (seed_a, _) = family_owned_by(&addrs, &addr_a, 0);
    let (seed_b, _) = family_owned_by(&addrs, &addr_b, 0);
    let specs: Vec<JobSpec> = (0..2)
        .flat_map(|s| [frozen(10, seed_a, s), frozen(10, seed_b, s)])
        .collect();
    let expected: Vec<String> = BatchRunner::new()
        .run(&specs)
        .into_iter()
        .map(|r| r.unwrap().to_json())
        .collect();

    // Short retry backoff so the failover is quick; a long sentinel
    // interval so recovery is the *forwarder's* doing, not a probe's.
    let (front, addr) = dispatcher(addrs, |config| {
        config.retry_backoff = Duration::from_millis(5);
        config.sentinel_interval = Duration::from_secs(3600);
    });

    // First half with the full fleet.
    for i in 0..2 {
        let response =
            client::request(&addr, "POST", "/v1/jobs", Some(&specs[i].to_json())).unwrap();
        assert_eq!(response.status, 200, "job {i}: {}", response.body);
        assert_eq!(response.body, expected[i], "job {i}");
    }

    // Kill shard A, then finish the batch: A's jobs must re-route to B
    // and come back byte-identical anyway.
    a.shutdown();
    for i in 2..specs.len() {
        let response =
            client::request(&addr, "POST", "/v1/jobs", Some(&specs[i].to_json())).unwrap();
        assert_eq!(response.status, 200, "job {i}: {}", response.body);
        assert_eq!(
            response.body, expected[i],
            "job {i}: bytes survive the failover"
        );
    }

    // The same holds for a scatter/merge batch against the degraded
    // fleet.
    let batch: String = format!(
        "[{}]",
        specs
            .iter()
            .map(JobSpec::to_json)
            .collect::<Vec<_>>()
            .join(",")
    );
    let response = client::request(&addr, "POST", "/v1/batch", Some(&batch)).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let merged = Value::parse(&response.body).unwrap();
    for (i, element) in merged
        .field("results")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .enumerate()
    {
        assert_eq!(element.field("status").unwrap().as_u64().unwrap(), 200);
        assert_eq!(element.field("body").unwrap().to_json(), expected[i]);
    }

    // The dispatcher observed the failover and demoted the dead shard.
    let stats = client::request(&addr, "GET", "/v1/stats", None).unwrap();
    let stats = Value::parse(&stats.body).unwrap();
    let rerouted = stats
        .field("forward")
        .unwrap()
        .field("rerouted")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(rerouted >= 1, "killing the owner must force a re-route");
    let shards = stats.field("shards").unwrap().as_array().unwrap();
    let healthy_of = |addr: &str| {
        shards
            .iter()
            .find(|s| s.field("addr").unwrap().as_str().unwrap() == addr)
            .unwrap()
            .field("healthy")
            .unwrap()
    };
    assert!(!healthy_of(&addr_a).as_bool().unwrap());
    assert!(healthy_of(&addr_b).as_bool().unwrap());

    front.shutdown();
    b.shutdown();
}

#[test]
fn fingerprint_affinity_concentrates_each_template_on_its_owner() {
    let (a, addr_a) = shard(ServerConfig::default());
    let (b, addr_b) = shard(ServerConfig::default());
    let addrs = vec![addr_a.clone(), addr_b.clone()];

    // Two families per shard, owners computed the way the dispatcher
    // computes them.
    let (s1, fp1) = family_owned_by(&addrs, &addr_a, 0);
    let (s2, fp2) = family_owned_by(&addrs, &addr_a, s1 + 1);
    let (s3, fp3) = family_owned_by(&addrs, &addr_b, 0);
    let (s4, fp4) = family_owned_by(&addrs, &addr_b, s3 + 1);
    let specs: Vec<JobSpec> = [s1, s2, s3, s4]
        .iter()
        .flat_map(|&family| (0..3).map(move |s| frozen(10, family, s)))
        .collect();

    // A long sentinel interval: no warm transfer may blur who compiled
    // what.
    let (front, addr) = dispatcher(addrs, |config| {
        config.sentinel_interval = Duration::from_secs(3600);
    });
    for spec in &specs {
        let response = client::request(&addr, "POST", "/v1/jobs", Some(&spec.to_json())).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
    }

    // Each shard holds exactly the fingerprints it owns — nothing else.
    let resident = |addr: &str| -> std::collections::BTreeSet<String> {
        client::template_index(addr)
            .unwrap()
            .into_iter()
            .map(|(fp, _)| fp)
            .collect()
    };
    assert_eq!(
        resident(&addr_a),
        [fp1.clone(), fp2.clone()].into_iter().collect(),
        "shard A compiled only its assigned families"
    );
    assert_eq!(
        resident(&addr_b),
        [fp3.clone(), fp4.clone()].into_iter().collect(),
        "shard B compiled only its assigned families"
    );

    // Fleet-wide, each of the 4 distinct templates was compiled exactly
    // once — the property naive round-robin destroys.
    assert_eq!(
        cache_misses(&addr_a) + cache_misses(&addr_b),
        4,
        "12 jobs over 4 families must cost exactly 4 compiles"
    );

    front.shutdown();
    b.shutdown();
    a.shutdown();
}

#[test]
fn sentinel_warm_transfer_makes_the_cold_owner_serve_compile_free() {
    // The whole cluster runs with one bearer token: shard template
    // pushes are gated, so a successful warm transfer also proves the
    // sentinel presents the token.
    const TOKEN: &str = "cluster-secret";
    let gated = || ServerConfig {
        auth_token: Some(TOKEN.into()),
        ..ServerConfig::default()
    };
    let (a, addr_a) = shard(gated());
    let (b, addr_b) = shard(gated());
    let addrs = vec![addr_a.clone(), addr_b.clone()];

    // A family whose rendezvous owner is the *cold* shard B, compiled
    // on A by submitting directly to it (job submission stays open
    // under auth; only template pushes are gated).
    let (graph_seed, fp) = family_owned_by(&addrs, &addr_b, 0);
    let spec = frozen(10, graph_seed, 0);
    let direct = client::request(&addr_a, "POST", "/v1/jobs", Some(&spec.to_json())).unwrap();
    assert_eq!(direct.status, 200, "{}", direct.body);
    assert_eq!(cache_misses(&addr_a), 1, "A paid the compile");

    // Boot the front door with a fast sentinel: it must notice that
    // B — the owner — lacks the template A holds, and push it over.
    let (front, _addr) = dispatcher(addrs, |config| {
        config.sentinel_interval = Duration::from_millis(50);
        config.auth_token = Some(TOKEN.into());
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resident: Vec<String> = client::template_index(&addr_b)
            .unwrap()
            .into_iter()
            .map(|(fingerprint, _)| fingerprint)
            .collect();
        if resident.contains(&fp) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "sentinel never transferred {fp} to its owner {addr_b}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The cold owner now serves its family compile-free, byte-identical
    // to the shard that did the compiling.
    let warmed = client::request(&addr_b, "POST", "/v1/jobs", Some(&spec.to_json())).unwrap();
    assert_eq!(warmed.status, 200, "{}", warmed.body);
    assert_eq!(warmed.body, direct.body, "bytes agree across shards");
    assert_eq!(
        cache_misses(&addr_b),
        0,
        "the warmed owner never compiles for its transferred family"
    );

    front.shutdown();
    b.shutdown();
    a.shutdown();
}
