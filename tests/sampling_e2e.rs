//! End-to-end sampling tests: the full solve path (partition → optimize →
//! compile → noisy Monte-Carlo sampling → decode → min) recovers exact
//! optima on small instances, and the symmetric-partner inference is
//! byte-exact. Driven through `JobKind::Sample` jobs.

use fq_graphs::{gen, to_ising_pm1};
use fq_ising::solve::exact_solve;
use fq_ising::{IsingModel, Spin};
use fq_transpile::Device;
use frozenqubits::{FrozenQubitsConfig, Job, JobKind, SolveOutcome};

fn ba(n: usize, seed: u64) -> IsingModel {
    to_ising_pm1(&gen::barabasi_albert(n, 1, seed).unwrap(), seed)
}

/// The sampling path through the job API (what `solve_with_sampling`
/// wraps).
fn solve(
    model: &IsingModel,
    device: &Device,
    cfg: &FrozenQubitsConfig,
    shots: u64,
) -> SolveOutcome {
    Job::from_parts(model, device, cfg, JobKind::Sample { shots })
        .run()
        .unwrap()
        .into_sample()
        .unwrap()
}

#[test]
fn fq_finds_global_optima_across_seeds() {
    let device = Device::ibm_auckland();
    let cfg = FrozenQubitsConfig::default();
    let mut found = 0usize;
    let total = 4;
    for seed in 0..total {
        let model = ba(8, seed as u64 + 20);
        let exact = exact_solve(&model).unwrap();
        let out = solve(&model, &device, &cfg, 4096);
        assert!(out.energy >= exact.energy - 1e-9, "cannot beat the optimum");
        if (out.energy - exact.energy).abs() < 1e-9 {
            found += 1;
        }
    }
    assert!(found >= 3, "found optimum in only {found}/{total} runs");
}

#[test]
fn fq_beats_or_matches_baseline_solution_quality() {
    let device = Device::ibm_toronto(); // the noisiest Falcon preset
    let model = ba(10, 31);
    let baseline_cfg = FrozenQubitsConfig::with_frozen(0);
    let fq_cfg = FrozenQubitsConfig::with_frozen(2);
    let base = solve(&model, &device, &baseline_cfg, 2048);
    let fq = solve(&model, &device, &fq_cfg, 2048);
    assert!(
        fq.energy <= base.energy + 1e-9,
        "FQ {} must not be worse than baseline {}",
        fq.energy,
        base.energy
    );
}

#[test]
fn partner_inference_matches_running_the_partner() {
    // Run the pruned branch explicitly (via Explicit strategy on the
    // mirrored model) and check the inferred distribution's support is the
    // bit-flip of the executed one.
    let model = ba(7, 40);
    let device = Device::ibm_montreal();
    let cfg = FrozenQubitsConfig::default();
    let out = solve(&model, &device, &cfg, 1024);
    let hub = out.frozen_qubits[0];

    // Split the union distribution into the two branches.
    let mut up_count = 0u64;
    let mut down_count = 0u64;
    for (z, c) in out.distribution.iter() {
        match z.spin(hub) {
            Spin::UP => up_count += c,
            _ => down_count += c,
        }
    }
    // Pruning copies the executed branch exactly: equal totals.
    assert_eq!(up_count, down_count);

    // And the flip of each up-branch outcome appears in the down branch
    // with identical multiplicity.
    for (z, c) in out.distribution.iter() {
        if z.spin(hub) == Spin::UP {
            let partner = z.flipped();
            let pc = (out.distribution.probability(&partner)
                * out.distribution.total_shots() as f64)
                .round() as u64;
            assert_eq!(pc, c, "partner multiplicity mismatch for {z}");
        }
    }
}

#[test]
fn asymmetric_models_run_all_branches() {
    let mut model = ba(7, 50);
    model.set_linear(2, 0.8).unwrap();
    let device = Device::ibm_montreal();
    let cfg = FrozenQubitsConfig::with_frozen(2);
    let out = solve(&model, &device, &cfg, 1000);
    // 4 branches × 1000 shots, no partner doubling.
    assert_eq!(out.distribution.total_shots(), 4 * 1000);
}

#[test]
fn energies_reported_match_the_model() {
    let model = ba(8, 60);
    let device = Device::ibm_hanoi();
    let out = solve(&model, &device, &FrozenQubitsConfig::default(), 512);
    assert!((model.energy(&out.best).unwrap() - out.energy).abs() < 1e-9);
}
