//! Crash-restart chaos: SIGKILL a live shard mid-batch (no shutdown
//! hooks, no flushes) and boot a replacement over the same
//! `--cache-dir`. The open item from the PR-8 chaos suite, pinned here:
//!
//! * **Byte identity survives the crash.** Every job the replacement
//!   serves returns bytes identical to a direct `BatchRunner` run.
//! * **The restart is compile-free.** The replacement's `/v1/stats`
//!   reports zero cache misses over the replay batch: the disk tier
//!   written before the kill is complete and uncorrupted, because the
//!   store's writes are atomic — there is no moment a SIGKILL can leave
//!   a half-template behind that would silently recompile.
//!
//! The victim shard runs in a **separate process** (re-exec of this
//! test binary, the `chaos_restart_child_shard` ignored "test"), so the
//! kill is a real `SIGKILL` to a real process, under a seeded
//! `FaultPlan` of worker stalls that guarantees jobs are in flight when
//! it lands.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fq_faults::FaultPlan;
use fq_serve::client;
use fq_serve::{Server, ServerConfig};
use frozenqubits::api::{BatchRunner, DeviceSpec, JobBuilder, JobSpec};
use serde::json::Value;

const CHILD_FLAG: &str = "FQ_CHAOS_RESTART_CHILD";
const CACHE_DIR: &str = "FQ_CHAOS_RESTART_CACHE";
const ADDR_FILE: &str = "FQ_CHAOS_RESTART_ADDR_FILE";

/// The worker-stall storm the victim runs under: every other job stalls
/// 200 ms before executing, so an async burst is reliably mid-flight
/// when the SIGKILL lands.
const VICTIM_PLAN: &str = "seed=7;worker:stall:1/2:ms=200";

fn mixed_specs() -> Vec<JobSpec> {
    let frozen = |n: usize, m: usize, seed: u64| -> JobSpec {
        JobBuilder::new()
            .barabasi_albert(n, 1, 4)
            .device(DeviceSpec::IbmMontreal)
            .num_frozen(m)
            .seed(seed)
            .frozen()
            .build()
            .unwrap()
    };
    let compare = JobBuilder::new()
        .barabasi_albert(8, 1, 2)
        .device(DeviceSpec::IbmMontreal)
        .compare()
        .build()
        .unwrap();
    let sample = JobBuilder::new()
        .barabasi_albert(8, 1, 2)
        .device(DeviceSpec::IbmMontreal)
        .sample(64)
        .build()
        .unwrap();
    vec![
        frozen(10, 1, 0),
        frozen(10, 1, 1),
        frozen(10, 2, 0),
        frozen(12, 1, 0),
        compare,
        sample,
    ]
}

/// Not a test: the victim-shard child process. Re-executed by the
/// parent with `--ignored --exact`; inert unless the env flag is set.
#[test]
#[ignore = "child process of sigkilled_shard_restarts_warm_and_byte_identical"]
fn chaos_restart_child_shard() {
    if std::env::var(CHILD_FLAG).is_err() {
        return;
    }
    let cache_dir = std::env::var(CACHE_DIR).expect("cache dir env");
    let addr_file = std::env::var(ADDR_FILE).expect("addr file env");
    let plan = FaultPlan::parse(VICTIM_PLAN).expect("valid victim plan");
    let handle = Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: Some(cache_dir),
        fault_plan: Some(Arc::new(plan)),
        ..ServerConfig::default()
    })
    .expect("victim shard boots");

    // Publish the bound address atomically (write + rename), then wait
    // to be SIGKILLed.
    let tmp = format!("{addr_file}.tmp");
    let mut f = std::fs::File::create(&tmp).unwrap();
    writeln!(f, "{}", handle.addr()).unwrap();
    drop(f);
    std::fs::rename(&tmp, &addr_file).unwrap();
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn wait_for_addr(path: &PathBuf) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if let Ok(text) = std::fs::read_to_string(path) {
            let addr = text.trim().to_string();
            if !addr.is_empty() {
                return addr;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("victim shard never published its address");
}

fn stat_u64(stats: &Value, path: &[&str]) -> u64 {
    let mut node = stats;
    for key in path {
        node = node.field(key).unwrap();
    }
    node.as_u64().unwrap()
}

#[test]
fn sigkilled_shard_restarts_warm_and_byte_identical() {
    let scratch = std::env::temp_dir().join(format!("fq-chaos-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let cache_dir = scratch.join("cache");
    let addr_file = scratch.join("addr");

    let specs = mixed_specs();
    // Ground truth: a direct in-process run of the same specs.
    let expected: Vec<String> = BatchRunner::new()
        .run_all(&specs)
        .unwrap()
        .iter()
        .map(frozenqubits::api::JobResult::to_json)
        .collect();

    // Boot the victim in its own process.
    let mut child = std::process::Command::new(std::env::current_exe().unwrap())
        .args([
            "--ignored",
            "--exact",
            "chaos_restart_child_shard",
            "--nocapture",
        ])
        .env(CHILD_FLAG, "1")
        .env(CACHE_DIR, &cache_dir)
        .env(ADDR_FILE, &addr_file)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("re-exec victim shard");
    let addr = wait_for_addr(&addr_file);

    // Phase 1 — warm the disk tier through the victim: every spec once,
    // synchronously, bytes checked against the direct run. After this
    // the spill directory holds every template the batch needs.
    for (spec, want) in specs.iter().zip(&expected) {
        let response = client::request(&addr, "POST", "/v1/jobs", Some(&spec.to_json())).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(
            &response.body, want,
            "victim serves direct-run bytes before the crash"
        );
    }

    // Phase 2 — mid-batch SIGKILL: queue an async burst (worker stalls
    // guarantee in-flight jobs), then kill -9 the shard process.
    let mut queued = 0;
    for spec in specs.iter().cycle().take(12) {
        let response =
            client::request(&addr, "POST", "/v1/jobs?mode=async", Some(&spec.to_json())).unwrap();
        assert_eq!(response.status, 202, "{}", response.body);
        queued += 1;
    }
    assert_eq!(queued, 12);
    child.kill().expect("SIGKILL the victim");
    child.wait().expect("reap the victim");
    assert!(
        client::request(&addr, "GET", "/v1/healthz", None).is_err(),
        "the victim is actually gone"
    );

    // Phase 3 — replacement over the same cache dir, no faults: every
    // spec replays byte-identically and the whole batch is served from
    // the disk tier with zero compiles.
    let replacement = Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: Some(cache_dir.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    })
    .unwrap();
    let new_addr = replacement.addr().to_string();
    for (spec, want) in specs.iter().zip(&expected) {
        let response =
            client::request(&new_addr, "POST", "/v1/jobs", Some(&spec.to_json())).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(
            &response.body, want,
            "replacement serves byte-identical results after the crash"
        );
    }
    let response = client::request(&new_addr, "GET", "/v1/stats", None).unwrap();
    let stats = Value::parse(&response.body).unwrap();
    assert_eq!(
        stat_u64(&stats, &["cache", "misses"]),
        0,
        "warm restart: zero compiles on the replacement ({})",
        response.body
    );
    assert!(
        stat_u64(&stats, &["cache", "hits"]) > 0,
        "the replay actually touched the cache"
    );
    replacement.shutdown();

    let _ = std::fs::remove_dir_all(&scratch);
}
