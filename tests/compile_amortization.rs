//! The plan/execute acceptance criterion: `run_frozen`/`solve` with
//! `m ≥ 1` invoke `fq_transpile::compile` exactly **once per distinct
//! sub-circuit shape** — not once per branch — proving the `2^m → 1`
//! compile amortization.
//!
//! `compile_invocations()` is process-global, so this file holds a single
//! test (its own process) and measures deltas with nothing else compiling.
//! (The cross-job batch amortization is asserted the same way in
//! `tests/batch_amortization.rs`.)
//!
//! These assertions run unchanged through the deprecated free-function
//! wrappers, which are one-liners over the job API — so they pin the new
//! entry path's compile counts too.
#![allow(deprecated)]

use fq_graphs::{gen, to_ising_pm1};
use fq_transpile::{compile_invocations, Device};
use frozenqubits::{compare, plan_execution, run_frozen, solve_with_sampling, FrozenQubitsConfig};

#[test]
fn one_compile_per_distinct_sub_shape() {
    let device = Device::ibm_montreal();
    let model = to_ising_pm1(&gen::barabasi_albert(12, 1, 9).unwrap(), 9);

    // run_frozen: one template regardless of the branch count.
    for m in 1..=3usize {
        let cfg = FrozenQubitsConfig::with_frozen(m);
        let plan = plan_execution(&model, &device, &cfg).unwrap();
        assert_eq!(plan.num_templates(), 1, "m={m}: one distinct sub-shape");

        let before = compile_invocations();
        let (summary, _) = run_frozen(&model, &device, &cfg).unwrap();
        let compiles = compile_invocations() - before;
        assert_eq!(
            compiles, 1,
            "m={m}: {} branches must share one compile",
            summary.circuits_executed
        );
        assert_eq!(summary.circuits_executed, 1 << (m - 1));
    }

    // compare = baseline shape + frozen shape: exactly two compiles.
    let before = compile_invocations();
    compare(&model, &device, &FrozenQubitsConfig::with_frozen(3)).unwrap();
    assert_eq!(compile_invocations() - before, 2);

    // The sampling solver amortizes identically.
    let small = to_ising_pm1(&gen::barabasi_albert(7, 1, 4).unwrap(), 4);
    let before = compile_invocations();
    solve_with_sampling(&small, &device, &FrozenQubitsConfig::with_frozen(3), 128).unwrap();
    assert_eq!(
        compile_invocations() - before,
        1,
        "4 sampled branches, one compile"
    );
}
