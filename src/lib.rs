//! Umbrella crate of the FrozenQubits reproduction workspace.
//!
//! The actual library lives in the workspace crates — start with
//! [`frozenqubits`] (the framework) and its job API
//! (`frozenqubits::api`: `JobBuilder` → `JobSpec` → `JobResult`), and
//! see `README.md` for the layering. This package exists to host the
//! workspace-level `examples/` and `tests/` directories.

pub use frozenqubits;

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_reexports_the_framework() {
        // Touch a symbol through the re-export so the path stays valid.
        let cfg = frozenqubits::FrozenQubitsConfig::default();
        assert_eq!(cfg.num_frozen, 1);
    }
}
